//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use upaq_tensor::ops::{
    avg_pool2d, avg_pool2d_batch, conv2d, conv2d_batch, linear, linear_batch, max_pool2d,
    max_pool2d_batch, quantized_conv2d, quantized_conv2d_batch, quantized_linear,
    quantized_linear_batch, Conv2dParams,
};
use upaq_tensor::quant::{fake_quantize, QuantizedTensor};
use upaq_tensor::sparse::{KernelMask, SparseKernel};
use upaq_tensor::{Shape, Tensor};

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..64)
}

/// A batch of `n` random same-shaped frames drawn from a seeded generator —
/// dependent shapes are awkward to express as strategies, so the strategy
/// supplies dimensions plus a seed and the data comes from `StdRng`.
fn random_frames(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tensor::uniform(Shape::nchw(1, c, h, w), -1.0, 1.0, &mut rng))
        .collect()
}

/// Random `[oc, ic, k, k]` weights with roughly half the taps pruned by a
/// seeded [`KernelMask`] — the sparse, mask-aware execution path.
fn masked_weights(oc: usize, ic: usize, k: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let dense = Tensor::uniform(Shape::nchw(oc, ic, k, k), -0.8, 0.8, &mut rng);
    let positions: Vec<(usize, usize)> = (0..k * k)
        .filter(|i| (seed >> (i % 61)) & 1 == 1)
        .map(|i| (i / k, i % k))
        .collect();
    KernelMask::from_positions(k, &positions)
        .apply_to_weights(&dense)
        .unwrap()
}

proptest! {
    #[test]
    fn shape_offset_unravel_roundtrip(dims in prop::collection::vec(1usize..6, 1..4)) {
        let shape = Shape::new(dims);
        for off in 0..shape.volume() {
            let idx = shape.unravel(off).unwrap();
            prop_assert_eq!(shape.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn add_is_commutative(data in small_vec()) {
        let n = data.len();
        let a = Tensor::from_vec(Shape::vector(n), data.clone()).unwrap();
        let b = Tensor::from_vec(Shape::vector(n), data.iter().rev().copied().collect()).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn quantize_dequantize_error_bounded(data in small_vec(), bits in 4u8..=16) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let q = QuantizedTensor::quantize(&t, bits).unwrap();
        let err = t.max_abs_diff(&q.dequantize()).unwrap();
        prop_assert!(err <= q.scale() * 0.5 + 1e-4);
    }

    #[test]
    fn quantization_preserves_sign(data in small_vec()) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        let recon = q.dequantize();
        for (orig, rec) in t.as_slice().iter().zip(recon.as_slice()) {
            // Sign may only flip through rounding to zero.
            if *rec != 0.0 {
                prop_assert!(orig.signum() == rec.signum());
            }
        }
    }

    #[test]
    fn sqnr_monotone_in_bits(data in prop::collection::vec(-5.0f32..5.0, 32..256)) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        // Skip degenerate all-equal inputs where variance is ~0.
        prop_assume!(t.variance() > 1e-3);
        let (_, s4) = fake_quantize(&t, 4).unwrap();
        let (_, s12) = fake_quantize(&t, 12).unwrap();
        prop_assert!(s12 >= s4);
    }

    #[test]
    fn mask_apply_never_increases_nonzeros(
        data in prop::collection::vec(-1.0f32..1.0, 9..=9),
        keep in prop::collection::vec(any::<bool>(), 9..=9),
    ) {
        let kernel = Tensor::from_vec(Shape::matrix(3, 3), data).unwrap();
        let positions: Vec<(usize, usize)> = keep
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| (i / 3, i % 3))
            .collect();
        let mask = KernelMask::from_positions(3, &positions);
        let pruned = mask.apply(&kernel).unwrap();
        prop_assert!(pruned.count_nonzero() <= kernel.count_nonzero());
        prop_assert!(pruned.count_nonzero() <= mask.kept());
    }

    #[test]
    fn sparse_kernel_roundtrip(data in prop::collection::vec(-1.0f32..1.0, 16..=16)) {
        let kernel = Tensor::from_vec(Shape::matrix(4, 4), data).unwrap();
        let sparse = SparseKernel::from_dense(&kernel).unwrap();
        prop_assert_eq!(sparse.to_dense(), kernel);
    }

    #[test]
    fn sparsity_in_unit_interval(data in small_vec()) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let s = t.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn batched_conv2d_matches_serial_loop(
        n in 1usize..6,
        ic in 1usize..4,
        oc in 1usize..4,
        h in 3usize..8,
        w in 3usize..8,
        pad in 0usize..2,
        stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        let inputs = random_frames(n, ic, h, w, seed);
        let weights = masked_weights(oc, ic, 3, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let bias = Tensor::uniform(Shape::vector(oc), -0.3, 0.3, &mut rng);
        let params = Conv2dParams { stride, padding: pad };
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = conv2d_batch(&refs, &weights, Some(&bias), params).unwrap();
        for (got, x) in batched.iter().zip(&inputs) {
            let serial = conv2d(x, &weights, Some(&bias), params).unwrap();
            prop_assert_eq!(got.as_slice(), serial.as_slice());
        }
    }

    #[test]
    fn batched_linear_matches_serial_loop(
        n in 1usize..6,
        in_f in 1usize..10,
        out_f in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| Tensor::uniform(Shape::vector(in_f), -2.0, 2.0, &mut rng))
            .collect();
        let weights = Tensor::uniform(Shape::matrix(out_f, in_f), -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(Shape::vector(out_f), -0.5, 0.5, &mut rng);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = linear_batch(&refs, &weights, Some(&bias)).unwrap();
        for (got, x) in batched.iter().zip(&inputs) {
            let serial = linear(x, &weights, Some(&bias)).unwrap();
            prop_assert_eq!(got.as_slice(), serial.as_slice());
        }
    }

    #[test]
    fn batched_pooling_matches_serial_loop(
        n in 1usize..6,
        c in 1usize..4,
        h in 2usize..8,
        w in 2usize..8,
        k in 1usize..3,
        stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(h >= k && w >= k);
        let inputs = random_frames(n, c, h, w, seed);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let max_b = max_pool2d_batch(&refs, k, stride).unwrap();
        let avg_b = avg_pool2d_batch(&refs, k, stride).unwrap();
        for (i, x) in inputs.iter().enumerate() {
            prop_assert_eq!(max_b[i].as_slice(), max_pool2d(x, k, stride).unwrap().as_slice());
            prop_assert_eq!(avg_b[i].as_slice(), avg_pool2d(x, k, stride).unwrap().as_slice());
        }
    }

    #[test]
    fn batched_quantized_conv2d_matches_serial_loop(
        n in 1usize..5,
        ic in 1usize..3,
        oc in 1usize..3,
        h in 3usize..7,
        w in 3usize..7,
        wbits in 4u8..=8,
        abits in 6u8..=12,
        seed in any::<u64>(),
    ) {
        let inputs = random_frames(n, ic, h, w, seed);
        let weights = QuantizedTensor::quantize(&masked_weights(oc, ic, 3, seed), wbits).unwrap();
        let params = Conv2dParams::same(3);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = quantized_conv2d_batch(&refs, &weights, None, abits, params).unwrap();
        for (got, x) in batched.iter().zip(&inputs) {
            let serial = quantized_conv2d(x, &weights, None, abits, params).unwrap();
            prop_assert_eq!(got.as_slice(), serial.as_slice());
        }
    }

    #[test]
    fn batched_quantized_linear_matches_serial_loop(
        n in 1usize..5,
        in_f in 1usize..9,
        out_f in 1usize..5,
        bits in 4u8..=10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| Tensor::uniform(Shape::vector(in_f), -2.0, 2.0, &mut rng))
            .collect();
        let wf = Tensor::uniform(Shape::matrix(out_f, in_f), -1.0, 1.0, &mut rng);
        let weights = QuantizedTensor::quantize(&wf, bits).unwrap();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = quantized_linear_batch(&refs, &weights, None, bits).unwrap();
        for (got, x) in batched.iter().zip(&inputs) {
            let serial = quantized_linear(x, &weights, None, bits).unwrap();
            prop_assert_eq!(got.as_slice(), serial.as_slice());
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(-2.0f32..2.0, 4..=4),
        b in prop::collection::vec(-2.0f32..2.0, 4..=4),
        c in prop::collection::vec(-2.0f32..2.0, 4..=4),
    ) {
        let ma = Tensor::from_vec(Shape::matrix(2, 2), a).unwrap();
        let mb = Tensor::from_vec(Shape::matrix(2, 2), b).unwrap();
        let mc = Tensor::from_vec(Shape::matrix(2, 2), c).unwrap();
        let lhs = ma.matmul(&mb.add(&mc).unwrap()).unwrap();
        let rhs = ma.matmul(&mb).unwrap().add(&ma.matmul(&mc).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }
}
