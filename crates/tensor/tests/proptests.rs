//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use upaq_tensor::quant::{fake_quantize, QuantizedTensor};
use upaq_tensor::sparse::{KernelMask, SparseKernel};
use upaq_tensor::{Shape, Tensor};

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..64)
}

proptest! {
    #[test]
    fn shape_offset_unravel_roundtrip(dims in prop::collection::vec(1usize..6, 1..4)) {
        let shape = Shape::new(dims);
        for off in 0..shape.volume() {
            let idx = shape.unravel(off).unwrap();
            prop_assert_eq!(shape.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn add_is_commutative(data in small_vec()) {
        let n = data.len();
        let a = Tensor::from_vec(Shape::vector(n), data.clone()).unwrap();
        let b = Tensor::from_vec(Shape::vector(n), data.iter().rev().copied().collect()).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn quantize_dequantize_error_bounded(data in small_vec(), bits in 4u8..=16) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let q = QuantizedTensor::quantize(&t, bits).unwrap();
        let err = t.max_abs_diff(&q.dequantize()).unwrap();
        prop_assert!(err <= q.scale() * 0.5 + 1e-4);
    }

    #[test]
    fn quantization_preserves_sign(data in small_vec()) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        let recon = q.dequantize();
        for (orig, rec) in t.as_slice().iter().zip(recon.as_slice()) {
            // Sign may only flip through rounding to zero.
            if *rec != 0.0 {
                prop_assert!(orig.signum() == rec.signum());
            }
        }
    }

    #[test]
    fn sqnr_monotone_in_bits(data in prop::collection::vec(-5.0f32..5.0, 32..256)) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        // Skip degenerate all-equal inputs where variance is ~0.
        prop_assume!(t.variance() > 1e-3);
        let (_, s4) = fake_quantize(&t, 4).unwrap();
        let (_, s12) = fake_quantize(&t, 12).unwrap();
        prop_assert!(s12 >= s4);
    }

    #[test]
    fn mask_apply_never_increases_nonzeros(
        data in prop::collection::vec(-1.0f32..1.0, 9..=9),
        keep in prop::collection::vec(any::<bool>(), 9..=9),
    ) {
        let kernel = Tensor::from_vec(Shape::matrix(3, 3), data).unwrap();
        let positions: Vec<(usize, usize)> = keep
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| (i / 3, i % 3))
            .collect();
        let mask = KernelMask::from_positions(3, &positions);
        let pruned = mask.apply(&kernel).unwrap();
        prop_assert!(pruned.count_nonzero() <= kernel.count_nonzero());
        prop_assert!(pruned.count_nonzero() <= mask.kept());
    }

    #[test]
    fn sparse_kernel_roundtrip(data in prop::collection::vec(-1.0f32..1.0, 16..=16)) {
        let kernel = Tensor::from_vec(Shape::matrix(4, 4), data).unwrap();
        let sparse = SparseKernel::from_dense(&kernel).unwrap();
        prop_assert_eq!(sparse.to_dense(), kernel);
    }

    #[test]
    fn sparsity_in_unit_interval(data in small_vec()) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let s = t.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(-2.0f32..2.0, 4..=4),
        b in prop::collection::vec(-2.0f32..2.0, 4..=4),
        c in prop::collection::vec(-2.0f32..2.0, 4..=4),
    ) {
        let ma = Tensor::from_vec(Shape::matrix(2, 2), a).unwrap();
        let mb = Tensor::from_vec(Shape::matrix(2, 2), b).unwrap();
        let mc = Tensor::from_vec(Shape::matrix(2, 2), c).unwrap();
        let lhs = ma.matmul(&mb.add(&mc).unwrap()).unwrap();
        let rhs = ma.matmul(&mb).unwrap().add(&ma.matmul(&mc).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }
}
