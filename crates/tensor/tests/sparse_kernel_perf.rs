//! Perf probe (ignored by default): packed dense vs sparse gather cost
//! at varying active fractions. This is the measurement behind the
//! sparse plan's dense-fallback threshold — the gather kernel walks
//! horizontal runs with the dense kernel's register blocking, so its
//! cost tracks `active_frac × dense` and break-even sits just under 1.
//!
//! Run with: `cargo test -p upaq-tensor --release -- --ignored --nocapture probe_sparse`

use std::time::Instant;
use upaq_tensor::ops::{conv2d_packed_into, conv2d_sparse_act_gather_into, Conv2dParams};
use upaq_tensor::packed::PackedConv;
use upaq_tensor::{Shape, Tensor};

#[test]
#[ignore]
fn probe_sparse_kernel_crossover() {
    let (c_in, c_out, h, w) = (64usize, 64usize, 32usize, 32usize);
    let params = Conv2dParams {
        stride: 1,
        padding: 1,
    };
    let mut seed = 7u64;
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as f32 / (1u64 << 31) as f32 - 0.5
    };
    let weights = Tensor::from_fn(Shape::nchw(c_out, c_in, 3, 3), |i| {
        if i % 3 == 0 {
            0.0
        } else {
            next()
        }
    });
    let bias = Tensor::zeros(Shape::vector(c_out));
    let packed = PackedConv::pack(&weights).unwrap();
    let input = Tensor::from_fn(Shape::nchw(1, c_in, h, w), |_| next());
    let mut out = Tensor::zeros(Shape::nchw(1, c_out, h, w));
    let iters = 200;

    let t = Instant::now();
    for _ in 0..iters {
        conv2d_packed_into(&input, &packed, Some(&bias), params, &mut out).unwrap();
    }
    let dense_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    println!("dense packed: {dense_us:.1} us");

    let bg = vec![0.0f32; c_in];
    for frac in [0.02, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let n = ((h * w) as f64 * frac) as usize;
        let step = (h * w) / n.max(1);
        let sites: Vec<u32> = (0..h * w)
            .step_by(step.max(1))
            .take(n)
            .map(|s| s as u32)
            .collect();
        let t = Instant::now();
        for _ in 0..iters {
            conv2d_sparse_act_gather_into(
                &input,
                &bg,
                &packed,
                Some(&bias),
                params,
                &sites,
                &mut out,
            )
            .unwrap();
        }
        let us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
        println!(
            "sparse frac {frac:.2} ({} sites): {us:.1} us ({:.2}x dense)",
            sites.len(),
            us / dense_us
        );
    }
}
