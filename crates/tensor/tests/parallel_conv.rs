//! Parallel conv2d must be bit-identical to serial execution: the channel
//! split changes scheduling only, never per-element arithmetic order.

use rand::rngs::StdRng;
use rand::SeedableRng;
use upaq_tensor::ops::{conv2d, conv2d_into, Conv2dParams, TensorParallel};
use upaq_tensor::{Shape, Tensor};

fn case(in_c: usize, out_c: usize, h: usize, w: usize, k: usize, params: Conv2dParams, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor::uniform(Shape::nchw(1, in_c, h, w), -1.0, 1.0, &mut rng);
    let mut weights = Tensor::uniform(Shape::nchw(out_c, in_c, k, k), -0.5, 0.5, &mut rng);
    // Prune some taps so the sparsity-skipping path is exercised too.
    for (i, v) in weights.as_mut_slice().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    let bias = Tensor::uniform(Shape::vector(out_c), -0.1, 0.1, &mut rng);

    TensorParallel::set_threads(1);
    let serial = conv2d(&input, &weights, Some(&bias), params).unwrap();
    for threads in [2, 3, 8, 64] {
        TensorParallel::set_threads(threads);
        let parallel = conv2d(&input, &weights, Some(&bias), params).unwrap();
        assert_eq!(
            serial.as_slice(),
            parallel.as_slice(),
            "bitwise mismatch at {threads} threads (in_c={in_c}, out_c={out_c})"
        );
    }
    TensorParallel::set_threads(1);
}

#[test]
fn parallel_conv_bitwise_matches_serial() {
    case(1, 1, 5, 5, 3, Conv2dParams::same(3), 1);
    case(3, 7, 9, 11, 3, Conv2dParams::same(3), 2);
    case(
        4,
        16,
        8,
        8,
        3,
        Conv2dParams {
            stride: 2,
            padding: 1,
        },
        3,
    );
    case(2, 5, 6, 6, 1, Conv2dParams::default(), 4);
}

#[test]
fn conv2d_into_reuses_buffer_across_calls() {
    TensorParallel::set_threads(2);
    let mut rng = StdRng::seed_from_u64(9);
    let weights = Tensor::uniform(Shape::nchw(4, 2, 3, 3), -0.5, 0.5, &mut rng);
    let mut out = Tensor::zeros(Shape::nchw(1, 4, 6, 6));
    for frame in 0..3 {
        let input = Tensor::uniform(Shape::nchw(1, 2, 6, 6), -1.0, 1.0, &mut rng);
        conv2d_into(&input, &weights, None, Conv2dParams::same(3), &mut out).unwrap();
        let fresh = conv2d(&input, &weights, None, Conv2dParams::same(3)).unwrap();
        assert_eq!(out.as_slice(), fresh.as_slice(), "frame {frame} diverged");
    }
    TensorParallel::set_threads(1);
}

#[test]
fn conv2d_into_rejects_wrong_output_shape() {
    let input = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
    let weights = Tensor::zeros(Shape::nchw(2, 1, 3, 3));
    let mut wrong = Tensor::zeros(Shape::nchw(1, 2, 4, 4));
    assert!(conv2d_into(&input, &weights, None, Conv2dParams::default(), &mut wrong).is_err());
}
