//! Dense, quantized, and sparsity-aware tensors for the UPAQ reproduction.
//!
//! This crate is the numeric substrate underneath every other crate in the
//! workspace. It provides:
//!
//! * [`Shape`] — row-major shapes with stride arithmetic;
//! * [`Tensor`] — a dense `f32` tensor with the elementwise / linear-algebra
//!   operations the detector models need;
//! * [`quant`] — symmetric integer quantization ([`quant::QuantizedTensor`])
//!   together with the signal-to-quantization-noise ratio (SQNR) used by the
//!   UPAQ `mp_quantizer` (Algorithm 6 of the paper);
//! * [`sparse`] — kernel masks and sparse kernel views used by semi-structured
//!   pattern pruning;
//! * [`packed`] — per-kernel non-zero tap lists ([`packed::PackedConv`])
//!   built once from the pruned weights so steady-state kernels stop
//!   re-scanning for zeros;
//! * [`ops`] — convolution, linear, pooling, normalization and activation
//!   kernels, each with a dense path and a sparsity/bitwidth-aware path.
//!
//! # Example
//!
//! ```
//! use upaq_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), upaq_tensor::TensorError> {
//! let a = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = a.map(|x| x * 2.0);
//! assert_eq!(b.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
//! # Ok(())
//! # }
//! ```

mod error;
mod shape;
mod tensor;

pub mod ops;
pub mod packed;
pub mod quant;
pub mod sparse;
pub mod sparse_act;

pub use error::TensorError;
pub use shape::Shape;
pub use sparse_act::SparseActivation;
pub use tensor::Tensor;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Returns `true` when two floats are within `tol` of each other,
/// relative to their magnitude.
///
/// Used pervasively by the test suites of downstream crates; exposed here so
/// every crate compares floats the same way.
///
/// ```
/// assert!(upaq_tensor::approx_eq(1.0, 1.0 + 1e-9, 1e-6));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}
