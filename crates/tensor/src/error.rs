use std::fmt;

/// Errors produced by tensor construction and tensor operations.
///
/// Every fallible public function in this crate returns
/// [`crate::Result`], whose error type is `TensorError`.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements the
    /// shape requires.
    LengthMismatch {
        /// Elements the shape requires.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two shapes that must agree (e.g. for elementwise ops) differ.
    ShapeMismatch {
        /// Left-hand operand shape.
        left: Vec<usize>,
        /// Right-hand operand shape.
        right: Vec<usize>,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's dimensions.
        dims: Vec<usize>,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the given tensor.
        actual: usize,
    },
    /// The requested quantization bitwidth is outside the supported 2..=16
    /// range.
    UnsupportedBitwidth(u8),
    /// An operation-specific invariant was violated (message explains which).
    Invalid(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dims {dims:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            TensorError::UnsupportedBitwidth(bits) => {
                write!(
                    f,
                    "unsupported quantization bitwidth {bits} (supported: 2..=16)"
                )
            }
            TensorError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
