//! Sparse activations: an active-site coordinate list over a
//! mostly-constant feature map.
//!
//! The BEV pseudo-image PointPillars consumes is overwhelmingly empty —
//! only cells that received at least one LiDAR return carry information.
//! [`SparseActivation`] represents such a map as the list of active
//! spatial sites (sorted row-major linear indices `y * w + x`), a
//! site-major matrix of per-site channel vectors, and a per-channel
//! *background* value that every inactive site holds. The background is
//! per-channel (not just zero) because convolution biases and batch-norm
//! shifts turn the all-zero empty region into a nonzero constant; carrying
//! it explicitly is what lets the sparse execution path stay raw-bits
//! identical to dense execution layer after layer.
//!
//! `from_dense`/`to_dense` round-trip exactly: site values and the
//! background are stored verbatim, and activity is decided by *bit*
//! comparison against the background (so `-0.0` vs `+0.0` and NaN payloads
//! are preserved, the same discipline as the rest of the bit-identity
//! firewall).

use crate::{Result, Shape, Tensor, TensorError};

/// A rank-4 `[1, c, h, w]` activation stored as active sites over a
/// per-channel constant background. See the module docs for the
/// representation contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseActivation {
    shape: Shape,
    /// Sorted row-major linear spatial indices (`y * w + x`) of active sites.
    sites: Vec<u32>,
    /// Site-major channel vectors: `values[s * c + ch]` is channel `ch` of
    /// the `s`-th active site.
    values: Vec<f32>,
    /// Per-channel value held by every inactive site, length `c`.
    background: Vec<f32>,
}

impl SparseActivation {
    /// Builds a sparse activation from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] when the shape is not rank-4 with
    /// batch 1, the sites are unsorted/duplicated/out of range, or the
    /// value/background lengths disagree with the shape.
    pub fn from_parts(
        shape: Shape,
        sites: Vec<u32>,
        values: Vec<f32>,
        background: Vec<f32>,
    ) -> Result<Self> {
        let (c, h, w) = check_shape(&shape)?;
        let n_cells = h * w;
        if background.len() != c {
            return Err(TensorError::Invalid(format!(
                "background length {} does not match {c} channels",
                background.len()
            )));
        }
        if values.len() != sites.len() * c {
            return Err(TensorError::Invalid(format!(
                "values length {} does not match {} sites × {c} channels",
                values.len(),
                sites.len()
            )));
        }
        let mut prev: Option<u32> = None;
        for &s in &sites {
            if (s as usize) >= n_cells {
                return Err(TensorError::Invalid(format!(
                    "site {s} out of range for {h}×{w} map"
                )));
            }
            if prev.is_some_and(|p| p >= s) {
                return Err(TensorError::Invalid(
                    "sites must be strictly increasing".into(),
                ));
            }
            prev = Some(s);
        }
        Ok(SparseActivation {
            shape,
            sites,
            values,
            background,
        })
    }

    /// Converts a dense `[1, c, h, w]` tensor, deriving the active set by
    /// bit-comparing every site's channel vector against `background` — a
    /// site is active iff any channel's bits differ.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] for non-`[1, c, h, w]` tensors or
    /// a background of the wrong length.
    pub fn from_dense(dense: &Tensor, background: Vec<f32>) -> Result<Self> {
        let (c, h, w) = check_shape(dense.shape())?;
        if background.len() != c {
            return Err(TensorError::Invalid(format!(
                "background length {} does not match {c} channels",
                background.len()
            )));
        }
        let n_cells = h * w;
        let data = dense.as_slice();
        let mut sites = Vec::new();
        for site in 0..n_cells {
            if (0..c).any(|ch| data[ch * n_cells + site].to_bits() != background[ch].to_bits()) {
                sites.push(site as u32);
            }
        }
        let values = gather(data, &sites, c, n_cells);
        Ok(SparseActivation {
            shape: dense.shape().clone(),
            sites,
            values,
            background,
        })
    }

    /// Converts a dense tensor whose active set is already known (e.g. the
    /// dilated site list a sparse conv computed), gathering the listed
    /// sites' channel vectors verbatim. Sites not listed must actually
    /// hold `background` for the round-trip to be exact; this is the
    /// caller's contract (debug-asserted).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] under the same conditions as
    /// [`SparseActivation::from_parts`].
    pub fn from_dense_sites(dense: &Tensor, sites: Vec<u32>, background: Vec<f32>) -> Result<Self> {
        let (c, h, w) = check_shape(dense.shape())?;
        let n_cells = h * w;
        let data = dense.as_slice();
        let values = gather(data, &sites, c, n_cells);
        let out = Self::from_parts(dense.shape().clone(), sites, values, background)?;
        #[cfg(debug_assertions)]
        {
            let mut next = 0usize;
            for site in 0..n_cells {
                if next < out.sites.len() && out.sites[next] as usize == site {
                    next += 1;
                    continue;
                }
                for ch in 0..c {
                    debug_assert_eq!(
                        data[ch * n_cells + site].to_bits(),
                        out.background[ch].to_bits(),
                        "unlisted site {site} channel {ch} differs from background"
                    );
                }
            }
        }
        Ok(out)
    }

    /// Materializes the dense `[1, c, h, w]` tensor: background fill plus
    /// scattered site values. Exact inverse of [`SparseActivation::from_dense`].
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(self.shape.clone());
        self.scatter_into(&mut out)
            .expect("self-derived shape matches");
        out
    }

    /// Writes the dense form into a caller-provided tensor (background
    /// fill, then active-site scatter), reusing its buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `out` has a different
    /// shape.
    pub fn scatter_into(&self, out: &mut Tensor) -> Result<()> {
        if out.shape() != &self.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: out.shape().dims().to_vec(),
            });
        }
        let (c, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        let n_cells = h * w;
        let data = out.as_mut_slice();
        for ch in 0..c {
            data[ch * n_cells..(ch + 1) * n_cells].fill(self.background[ch]);
        }
        for (s, &site) in self.sites.iter().enumerate() {
            for ch in 0..c {
                data[ch * n_cells + site as usize] = self.values[s * c + ch];
            }
        }
        Ok(())
    }

    /// The dense shape `[1, c, h, w]`.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Sorted row-major linear indices of active sites.
    pub fn sites(&self) -> &[u32] {
        &self.sites
    }

    /// Per-channel background value at inactive sites.
    pub fn background(&self) -> &[f32] {
        &self.background
    }

    /// Site-major channel values (`values()[s * channels + ch]`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shape.dim(1)
    }

    /// Number of active sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site is active (an empty scene).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Active fraction: active sites over total spatial sites (0.0 for a
    /// degenerate zero-area map).
    pub fn density(&self) -> f64 {
        let cells = self.shape.dim(2) * self.shape.dim(3);
        if cells == 0 {
            0.0
        } else {
            self.sites.len() as f64 / cells as f64
        }
    }

    /// Whether any background channel is nonzero — the condition under
    /// which padded-border conv sites see a different tap sum than the
    /// interior and must be treated as active.
    pub fn background_nonzero(&self) -> bool {
        self.background.iter().any(|&v| v != 0.0)
    }
}

fn check_shape(shape: &Shape) -> Result<(usize, usize, usize)> {
    if shape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: shape.rank(),
        });
    }
    if shape.dim(0) != 1 {
        return Err(TensorError::Invalid(
            "sparse activations support batch size 1 only".into(),
        ));
    }
    Ok((shape.dim(1), shape.dim(2), shape.dim(3)))
}

fn gather(data: &[f32], sites: &[u32], c: usize, n_cells: usize) -> Vec<f32> {
    let mut values = Vec::with_capacity(sites.len() * c);
    for &site in sites {
        for ch in 0..c {
            values.push(data[ch * n_cells + site as usize]);
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip_is_bit_exact() {
        let shape = Shape::nchw(1, 3, 4, 5);
        let dense = Tensor::from_fn(shape.clone(), |i| {
            if i % 7 == 0 {
                (i as f32 * 0.37).sin()
            } else {
                0.25
            }
        });
        let sp = SparseActivation::from_dense(&dense, vec![0.25; 3]).unwrap();
        assert!(sp.len() < 20);
        let back = sp.to_dense();
        let a: Vec<u32> = dense.as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn signed_zero_counts_as_active() {
        let mut dense = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        dense.as_mut_slice()[3] = -0.0;
        let sp = SparseActivation::from_dense(&dense, vec![0.0]).unwrap();
        assert_eq!(sp.sites(), &[3]);
        assert_eq!(sp.to_dense().as_slice()[3].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn from_parts_validates() {
        let shape = Shape::nchw(1, 2, 2, 2);
        // Unsorted sites.
        assert!(SparseActivation::from_parts(
            shape.clone(),
            vec![2, 1],
            vec![0.0; 4],
            vec![0.0; 2]
        )
        .is_err());
        // Out-of-range site.
        assert!(
            SparseActivation::from_parts(shape.clone(), vec![4], vec![0.0; 2], vec![0.0; 2])
                .is_err()
        );
        // Wrong value length.
        assert!(
            SparseActivation::from_parts(shape.clone(), vec![0], vec![0.0; 3], vec![0.0; 2])
                .is_err()
        );
        // Wrong background length.
        assert!(
            SparseActivation::from_parts(shape.clone(), vec![0], vec![0.0; 2], vec![0.0]).is_err()
        );
        assert!(
            SparseActivation::from_parts(shape, vec![0, 3], vec![0.5; 4], vec![0.0; 2]).is_ok()
        );
    }

    #[test]
    fn empty_scene_roundtrip() {
        let dense = Tensor::zeros(Shape::nchw(1, 2, 3, 3));
        let sp = SparseActivation::from_dense(&dense, vec![0.0; 2]).unwrap();
        assert!(sp.is_empty());
        assert_eq!(sp.density(), 0.0);
        assert_eq!(sp.to_dense().as_slice(), dense.as_slice());
    }

    #[test]
    fn scatter_into_respects_background() {
        let shape = Shape::nchw(1, 2, 2, 2);
        let sp =
            SparseActivation::from_parts(shape.clone(), vec![1], vec![7.0, -3.0], vec![0.5, 1.5])
                .unwrap();
        let mut out = Tensor::zeros(shape);
        sp.scatter_into(&mut out).unwrap();
        assert_eq!(out.as_slice(), &[0.5, 7.0, 0.5, 0.5, 1.5, -3.0, 1.5, 1.5]);
    }
}
