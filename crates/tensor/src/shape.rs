use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row-major tensor shape.
///
/// `Shape` owns its dimension list and provides the stride / linear-offset
/// arithmetic used by [`crate::Tensor`].
///
/// ```
/// use upaq_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// A zero-length dimension list denotes a scalar; zero-sized dimensions
    /// are allowed and give a volume of 0.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Shorthand for a rank-1 shape.
    pub fn vector(len: usize) -> Self {
        Shape::new(vec![len])
    }

    /// Shorthand for a rank-2 shape (rows, cols).
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape::new(vec![rows, cols])
    }

    /// Shorthand for the NCHW layout used by the conv kernels.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape::new(vec![n, c, h, w])
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a linear row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any component exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(i, d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                dims: self.dims.clone(),
            });
        }
        Ok(index.iter().zip(self.strides()).map(|(i, s)| i * s).sum())
    }

    /// Converts a linear row-major offset back to a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `offset >= volume()`.
    pub fn unravel(&self, offset: usize) -> Result<Vec<usize>> {
        if offset >= self.volume() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![offset],
                dims: self.dims.clone(),
            });
        }
        let mut rem = offset;
        let mut index = Vec::with_capacity(self.dims.len());
        for stride in self.strides() {
            index.push(rem / stride);
            rem %= stride;
        }
        Ok(index)
    }

    /// Returns `true` when the last dimension equals 1 — the test the
    /// compression stage (paper Algorithm 3, line 7) uses to route kernels to
    /// the 1×1 or k×k compression path.
    pub fn is_pointwise(&self) -> bool {
        self.dims.last().copied() == Some(1)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn zero_sized_dim() {
        let s = Shape::new(vec![3, 0, 2]);
        assert_eq!(s.volume(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(vec![3, 4, 5]);
        for off in 0..s.volume() {
            let idx = s.unravel(off).unwrap();
            assert_eq!(s.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::new(vec![2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.unravel(4).is_err());
    }

    #[test]
    fn pointwise_detection() {
        assert!(Shape::new(vec![64, 9, 1, 1]).is_pointwise());
        assert!(!Shape::new(vec![64, 64, 3, 3]).is_pointwise());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "(2×3)");
    }

    #[test]
    fn from_conversions() {
        let s: Shape = vec![1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s2: Shape = (&[3usize, 4][..]).into();
        assert_eq!(s2.dims(), &[3, 4]);
    }
}
