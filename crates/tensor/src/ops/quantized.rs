//! Int-domain execution of quantized layers.
//!
//! The compression pipeline stores pruned-and-quantized kernels as
//! [`QuantizedTensor`] codes; these kernels execute them **without
//! dequantizing the weights**: activations are quantized with a per-tensor
//! symmetric scale, the convolution/matmul accumulates in `i64` over the
//! integer codes (skipping pruned zero codes), and a single rescale
//! `acc * (scale_w * scale_x)` returns to the real domain — the INT8-style
//! path TensorRT deployments of the paper's targets use. Bias stays in
//! f32 and is added after the rescale.

use crate::ops::conv::Conv2dParams;
use crate::quant::QuantizedTensor;
use crate::{Result, Tensor};

/// Int-domain 2-D convolution: f32 input `[1, in_c, h, w]`, quantized
/// weights `[out_c, in_c, kh, kw]`, optional f32 bias.
///
/// The input is quantized to `act_bits` with a per-tensor symmetric scale,
/// the accumulation runs over the integer codes (zero codes — pruned
/// weights — are skipped), and each output element is rescaled once.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`]/[`TensorError::ShapeMismatch`]/
/// [`TensorError::Invalid`] for the same operand problems as
/// [`conv2d`][crate::ops::conv2d], and
/// [`TensorError::UnsupportedBitwidth`] for a bad `act_bits`.
pub fn quantized_conv2d(
    input: &Tensor,
    weights: &QuantizedTensor,
    bias: Option<&Tensor>,
    act_bits: u8,
    params: Conv2dParams,
) -> Result<Tensor> {
    let batched = crate::ops::quantized_conv2d_batch(&[input], weights, bias, act_bits, params)?;
    Ok(batched.into_iter().next().expect("one frame in, one out"))
}

/// Int-domain fully-connected layer: f32 rank-1 input, quantized weights
/// `[out_f, in_f]`, optional f32 bias. Same integer path as
/// [`quantized_conv2d`].
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`]/[`TensorError::ShapeMismatch`]
/// for operand problems and [`TensorError::UnsupportedBitwidth`] for a bad
/// `act_bits`.
pub fn quantized_linear(
    input: &Tensor,
    weights: &QuantizedTensor,
    bias: Option<&Tensor>,
    act_bits: u8,
) -> Result<Tensor> {
    let batched = crate::ops::quantized_linear_batch(&[input], weights, bias, act_bits)?;
    Ok(batched.into_iter().next().expect("one frame in, one out"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn int_domain_conv_tracks_fake_quantized_reference() {
        // The int path must agree with "dequantize everything, run f32"
        // up to activation-quantization noise.
        let mut rng = StdRng::seed_from_u64(41);
        let x = Tensor::uniform(Shape::nchw(1, 2, 5, 5), -1.0, 1.0, &mut rng);
        let wf = Tensor::uniform(Shape::nchw(3, 2, 3, 3), -0.5, 0.5, &mut rng);
        let bias = Tensor::uniform(Shape::vector(3), -0.2, 0.2, &mut rng);
        let q = QuantizedTensor::quantize(&wf, 8).unwrap();
        let p = Conv2dParams::same(3);
        let out = quantized_conv2d(&x, &q, Some(&bias), 16, p).unwrap();
        let reference = crate::ops::conv2d(&x, &q.dequantize(), Some(&bias), p).unwrap();
        assert!(out.max_abs_diff(&reference).unwrap() < 1e-3);
    }

    #[test]
    fn int_domain_linear_tracks_fake_quantized_reference() {
        let mut rng = StdRng::seed_from_u64(43);
        let x = Tensor::uniform(Shape::vector(8), -2.0, 2.0, &mut rng);
        let wf = Tensor::uniform(Shape::matrix(4, 8), -1.0, 1.0, &mut rng);
        let q = QuantizedTensor::quantize(&wf, 8).unwrap();
        let out = quantized_linear(&x, &q, None, 16).unwrap();
        let reference = crate::ops::linear(&x, &q.dequantize(), None).unwrap();
        assert!(out.max_abs_diff(&reference).unwrap() < 1e-3);
    }

    #[test]
    fn pruned_codes_do_no_work_but_change_nothing() {
        // Zeroing codes (pruning) must equal running with those codes kept
        // as explicit zeros — the skip is an optimization, not a semantic.
        let mut rng = StdRng::seed_from_u64(47);
        let x = Tensor::uniform(Shape::nchw(1, 1, 4, 4), -1.0, 1.0, &mut rng);
        let wf = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| {
            if i % 2 == 0 {
                (i as f32 + 1.0) * 0.1
            } else {
                0.0
            }
        });
        let q = QuantizedTensor::quantize(&wf, 8).unwrap();
        let p = Conv2dParams::same(3);
        let out = quantized_conv2d(&x, &q, None, 12, p).unwrap();
        let reference = crate::ops::conv2d(&x, &q.dequantize(), None, p).unwrap();
        assert!(out.max_abs_diff(&reference).unwrap() < 1e-3);
    }

    #[test]
    fn rejects_bad_act_bits_and_shapes() {
        let x = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        let q = QuantizedTensor::quantize(&Tensor::zeros(Shape::nchw(1, 1, 3, 3)), 8).unwrap();
        assert!(quantized_conv2d(&x, &q, None, 1, Conv2dParams::default()).is_err());
        let bad = Tensor::zeros(Shape::nchw(1, 2, 4, 4));
        assert!(quantized_conv2d(&bad, &q, None, 8, Conv2dParams::default()).is_err());
        let qv = QuantizedTensor::quantize(&Tensor::zeros(Shape::matrix(2, 3)), 8).unwrap();
        assert!(quantized_linear(&Tensor::zeros(Shape::vector(4)), &qv, None, 8).is_err());
    }
}
