//! Inference-time batch normalization.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Frozen batch-norm statistics and affine parameters for one layer.
///
/// At inference time batch norm is the per-channel affine map
/// `y = γ · (x - μ) / √(σ² + ε) + β`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNormParams {
    /// Per-channel scale γ.
    pub gamma: Vec<f32>,
    /// Per-channel shift β.
    pub beta: Vec<f32>,
    /// Per-channel running mean μ.
    pub mean: Vec<f32>,
    /// Per-channel running variance σ².
    pub var: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNormParams {
    /// Identity batch norm over `channels` channels (γ=1, β=0, μ=0, σ²=1).
    pub fn identity(channels: usize) -> Self {
        BatchNormParams {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            mean: vec![0.0; channels],
            var: vec![1.0; channels],
            eps: 1e-5,
        }
    }

    /// Number of channels these parameters normalize.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// The folded per-channel `(scale, shift)` pair such that
    /// `y = scale·x + shift` — what TensorRT-style engines fold into the
    /// preceding convolution.
    pub fn folded(&self) -> Vec<(f32, f32)> {
        (0..self.channels())
            .map(|c| {
                let inv_std = 1.0 / (self.var[c] + self.eps).sqrt();
                let scale = self.gamma[c] * inv_std;
                let shift = self.beta[c] - self.mean[c] * scale;
                (scale, shift)
            })
            .collect()
    }
}

/// Applies frozen batch norm to an NCHW activation tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs and
/// [`TensorError::ShapeMismatch`] when the channel count differs from the
/// parameter vectors.
pub fn batch_norm(input: &Tensor, params: &BatchNormParams) -> Result<Tensor> {
    let shape = input.shape();
    if shape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: shape.rank(),
        });
    }
    let (c, h, w) = (shape.dim(1), shape.dim(2), shape.dim(3));
    if c != params.channels() {
        return Err(TensorError::ShapeMismatch {
            left: shape.dims().to_vec(),
            right: vec![shape.dim(0), params.channels(), h, w],
        });
    }
    let folded = params.folded();
    let mut out = input.clone();
    let data = out.as_mut_slice();
    for (ch, &(scale, shift)) in folded.iter().enumerate() {
        for v in &mut data[ch * h * w..(ch + 1) * h * w] {
            *v = scale * *v + shift;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, Shape};

    #[test]
    fn identity_params_are_noop() {
        let t = Tensor::from_vec(Shape::nchw(1, 2, 1, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = batch_norm(&t, &BatchNormParams::identity(2)).unwrap();
        assert!(out.max_abs_diff(&t).unwrap() < 1e-4);
    }

    #[test]
    fn normalizes_to_unit_stats() {
        let params = BatchNormParams {
            gamma: vec![1.0],
            beta: vec![0.0],
            mean: vec![10.0],
            var: vec![4.0],
            eps: 0.0,
        };
        let t = Tensor::from_vec(Shape::nchw(1, 1, 1, 2), vec![10.0, 14.0]).unwrap();
        let out = batch_norm(&t, &params).unwrap();
        assert!(approx_eq(out.as_slice()[0], 0.0, 1e-5));
        assert!(approx_eq(out.as_slice()[1], 2.0, 1e-5));
    }

    #[test]
    fn affine_applied_after_normalization() {
        let params = BatchNormParams {
            gamma: vec![3.0],
            beta: vec![1.0],
            mean: vec![0.0],
            var: vec![1.0],
            eps: 0.0,
        };
        let t = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![2.0]).unwrap();
        let out = batch_norm(&t, &params).unwrap();
        assert!(approx_eq(out.as_slice()[0], 7.0, 1e-5));
    }

    #[test]
    fn rejects_channel_mismatch() {
        let t = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        assert!(batch_norm(&t, &BatchNormParams::identity(2)).is_err());
        let bad = Tensor::zeros(Shape::matrix(2, 2));
        assert!(batch_norm(&bad, &BatchNormParams::identity(2)).is_err());
    }

    #[test]
    fn folded_matches_direct_computation() {
        let params = BatchNormParams {
            gamma: vec![2.0],
            beta: vec![-1.0],
            mean: vec![5.0],
            var: vec![9.0],
            eps: 0.0,
        };
        let (scale, shift) = params.folded()[0];
        let x = 8.0f32;
        let direct = 2.0 * (x - 5.0) / 3.0 - 1.0;
        assert!(approx_eq(scale * x + shift, direct, 1e-5));
    }
}
