//! Inference-time batch normalization.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Frozen batch-norm statistics and affine parameters for one layer.
///
/// At inference time batch norm is the per-channel affine map
/// `y = γ · (x - μ) / √(σ² + ε) + β`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNormParams {
    /// Per-channel scale γ.
    pub gamma: Vec<f32>,
    /// Per-channel shift β.
    pub beta: Vec<f32>,
    /// Per-channel running mean μ.
    pub mean: Vec<f32>,
    /// Per-channel running variance σ².
    pub var: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNormParams {
    /// Identity batch norm over `channels` channels (γ=1, β=0, μ=0, σ²=1).
    pub fn identity(channels: usize) -> Self {
        BatchNormParams {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            mean: vec![0.0; channels],
            var: vec![1.0; channels],
            eps: 1e-5,
        }
    }

    /// Number of channels these parameters normalize.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// The folded per-channel `(scale, shift)` pair such that
    /// `y = scale·x + shift` — what TensorRT-style engines fold into the
    /// preceding convolution.
    pub fn folded(&self) -> Vec<(f32, f32)> {
        (0..self.channels())
            .map(|c| {
                let inv_std = 1.0 / (self.var[c] + self.eps).sqrt();
                let scale = self.gamma[c] * inv_std;
                let shift = self.beta[c] - self.mean[c] * scale;
                (scale, shift)
            })
            .collect()
    }
}

/// Applies frozen batch norm to an NCHW activation tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs and
/// [`TensorError::ShapeMismatch`] when the channel count differs from the
/// parameter vectors.
pub fn batch_norm(input: &Tensor, params: &BatchNormParams) -> Result<Tensor> {
    let mut out = input.clone();
    batch_norm_into(input, params, &mut out)?;
    Ok(out)
}

/// [`batch_norm`] into a caller-provided same-shaped tensor. The folded
/// per-channel `(scale, shift)` is computed inline with the exact
/// [`BatchNormParams::folded`] arithmetic, so this path is bit-identical
/// to [`batch_norm`] while allocating nothing.
///
/// # Errors
///
/// All [`batch_norm`] error conditions, plus
/// [`TensorError::ShapeMismatch`] when `out` differs in shape.
pub fn batch_norm_into(input: &Tensor, params: &BatchNormParams, out: &mut Tensor) -> Result<()> {
    let shape = input.shape();
    if shape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: shape.rank(),
        });
    }
    let (c, h, w) = (shape.dim(1), shape.dim(2), shape.dim(3));
    if c != params.channels() {
        return Err(TensorError::ShapeMismatch {
            left: shape.dims().to_vec(),
            right: vec![shape.dim(0), params.channels(), h, w],
        });
    }
    if out.shape() != shape {
        return Err(TensorError::ShapeMismatch {
            left: shape.dims().to_vec(),
            right: out.shape().dims().to_vec(),
        });
    }
    let idata = input.as_slice();
    let odata = out.as_mut_slice();
    for ch in 0..c {
        let inv_std = 1.0 / (params.var[ch] + params.eps).sqrt();
        let scale = params.gamma[ch] * inv_std;
        let shift = params.beta[ch] - params.mean[ch] * scale;
        let base = ch * h * w;
        for i in 0..h * w {
            odata[base + i] = scale * idata[base + i] + shift;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, Shape};

    #[test]
    fn identity_params_are_noop() {
        let t = Tensor::from_vec(Shape::nchw(1, 2, 1, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = batch_norm(&t, &BatchNormParams::identity(2)).unwrap();
        assert!(out.max_abs_diff(&t).unwrap() < 1e-4);
    }

    #[test]
    fn normalizes_to_unit_stats() {
        let params = BatchNormParams {
            gamma: vec![1.0],
            beta: vec![0.0],
            mean: vec![10.0],
            var: vec![4.0],
            eps: 0.0,
        };
        let t = Tensor::from_vec(Shape::nchw(1, 1, 1, 2), vec![10.0, 14.0]).unwrap();
        let out = batch_norm(&t, &params).unwrap();
        assert!(approx_eq(out.as_slice()[0], 0.0, 1e-5));
        assert!(approx_eq(out.as_slice()[1], 2.0, 1e-5));
    }

    #[test]
    fn affine_applied_after_normalization() {
        let params = BatchNormParams {
            gamma: vec![3.0],
            beta: vec![1.0],
            mean: vec![0.0],
            var: vec![1.0],
            eps: 0.0,
        };
        let t = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![2.0]).unwrap();
        let out = batch_norm(&t, &params).unwrap();
        assert!(approx_eq(out.as_slice()[0], 7.0, 1e-5));
    }

    #[test]
    fn rejects_channel_mismatch() {
        let t = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        assert!(batch_norm(&t, &BatchNormParams::identity(2)).is_err());
        let bad = Tensor::zeros(Shape::matrix(2, 2));
        assert!(batch_norm(&bad, &BatchNormParams::identity(2)).is_err());
    }

    #[test]
    fn into_variant_is_bit_identical_and_checks_shape() {
        let params = BatchNormParams {
            gamma: vec![2.0, 0.5],
            beta: vec![-1.0, 3.0],
            mean: vec![5.0, -2.0],
            var: vec![9.0, 0.25],
            eps: 1e-5,
        };
        let t = Tensor::from_vec(Shape::nchw(1, 2, 1, 2), vec![8.0, -3.5, 0.25, 100.0]).unwrap();
        let fresh = batch_norm(&t, &params).unwrap();
        let mut reused = Tensor::full(Shape::nchw(1, 2, 1, 2), 7.0);
        batch_norm_into(&t, &params, &mut reused).unwrap();
        assert_eq!(fresh.as_slice(), reused.as_slice());
        let mut bad = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        assert!(batch_norm_into(&t, &params, &mut bad).is_err());
    }

    #[test]
    fn folded_matches_direct_computation() {
        let params = BatchNormParams {
            gamma: vec![2.0],
            beta: vec![-1.0],
            mean: vec![5.0],
            var: vec![9.0],
            eps: 0.0,
        };
        let (scale, shift) = params.folded()[0];
        let x = 8.0f32;
        let direct = 2.0 * (x - 5.0) / 3.0 - 1.0;
        assert!(approx_eq(scale * x + shift, direct, 1e-5));
    }
}
