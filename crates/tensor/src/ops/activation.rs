//! Pointwise activation functions.

use crate::{Result, Tensor, TensorError};

/// Rectified linear unit: `max(0, x)` elementwise.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// [`relu`] into a caller-provided same-shaped tensor — the
/// zero-allocation steady-state path.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `out` differs in shape.
pub fn relu_into(input: &Tensor, out: &mut Tensor) -> Result<()> {
    if out.shape() != input.shape() {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().dims().to_vec(),
            right: out.shape().dims().to_vec(),
        });
    }
    for (d, s) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
        *d = s.max(0.0);
    }
    Ok(())
}

/// Leaky ReLU with negative slope `alpha`.
pub fn leaky_relu(input: &Tensor, alpha: f32) -> Tensor {
    input.map(|x| if x >= 0.0 { x } else { alpha * x })
}

/// Logistic sigmoid: `1 / (1 + e^-x)` elementwise. Used by detection heads
/// to squash classification logits into scores.
pub fn sigmoid(input: &Tensor) -> Tensor {
    input.map(|x| 1.0 / (1.0 + (-x).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, Shape};

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(Shape::vector(3), vec![-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_into_matches_and_checks_shape() {
        let t = Tensor::from_vec(Shape::vector(3), vec![-1.0, 0.0, 2.0]).unwrap();
        let mut out = Tensor::full(Shape::vector(3), 9.0);
        relu_into(&t, &mut out).unwrap();
        assert_eq!(out.as_slice(), relu(&t).as_slice());
        let mut bad = Tensor::zeros(Shape::vector(4));
        assert!(relu_into(&t, &mut bad).is_err());
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let t = Tensor::from_vec(Shape::vector(2), vec![-10.0, 10.0]).unwrap();
        assert_eq!(leaky_relu(&t, 0.1).as_slice(), &[-1.0, 10.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let t = Tensor::from_vec(Shape::vector(3), vec![-100.0, 0.0, 100.0]).unwrap();
        let s = sigmoid(&t);
        assert!(approx_eq(s.as_slice()[0], 0.0, 1e-6));
        assert!(approx_eq(s.as_slice()[1], 0.5, 1e-6));
        assert!(approx_eq(s.as_slice()[2], 1.0, 1e-6));
    }
}
