//! Pointwise activation functions.

use crate::Tensor;

/// Rectified linear unit: `max(0, x)` elementwise.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// Leaky ReLU with negative slope `alpha`.
pub fn leaky_relu(input: &Tensor, alpha: f32) -> Tensor {
    input.map(|x| if x >= 0.0 { x } else { alpha * x })
}

/// Logistic sigmoid: `1 / (1 + e^-x)` elementwise. Used by detection heads
/// to squash classification logits into scores.
pub fn sigmoid(input: &Tensor) -> Tensor {
    input.map(|x| 1.0 / (1.0 + (-x).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, Shape};

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(Shape::vector(3), vec![-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let t = Tensor::from_vec(Shape::vector(2), vec![-10.0, 10.0]).unwrap();
        assert_eq!(leaky_relu(&t, 0.1).as_slice(), &[-1.0, 10.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let t = Tensor::from_vec(Shape::vector(3), vec![-100.0, 0.0, 100.0]).unwrap();
        let s = sigmoid(&t);
        assert!(approx_eq(s.as_slice()[0], 0.0, 1e-6));
        assert!(approx_eq(s.as_slice()[1], 0.5, 1e-6));
        assert!(approx_eq(s.as_slice()[2], 1.0, 1e-6));
    }
}
