//! 2-D convolution with sparsity-aware inner loops.

use super::parallel::{parallel_for_chunks, ExecMode, SendPtr, TensorParallel};
use crate::packed::PackedConv;
use crate::{Result, Shape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Spatial stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// Stride-1 "same" convolution for odd kernel size `k`.
    pub fn same(k: usize) -> Self {
        Conv2dParams {
            stride: 1,
            padding: k / 2,
        }
    }

    /// Output spatial size for an input of size `i` and kernel size `k`.
    ///
    /// Returns 0 when the kernel does not fit.
    pub fn out_size(&self, i: usize, k: usize) -> usize {
        let padded = i + 2 * self.padding;
        if padded < k {
            0
        } else {
            (padded - k) / self.stride + 1
        }
    }
}

/// Direct 2-D convolution: input `[1, in_c, h, w]`, weights
/// `[out_c, in_c, kh, kw]`, optional per-output-channel bias.
///
/// Zero weights are skipped in the innermost accumulation, so pruned kernels
/// genuinely do less floating-point work — the same effect the paper relies
/// on from hardware weight-compression support (§III-A).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 operands,
/// [`TensorError::ShapeMismatch`] for channel disagreements, and
/// [`TensorError::Invalid`] when the batch dimension is not 1 or the bias
/// length is wrong.
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor> {
    let (out_c, oh, ow) = conv2d_out_dims(input, weights, bias, params)?;
    // The zeroed buffer is load-bearing only for the reference branch,
    // which accumulates; the packed kernel writes every element.
    let mut out = Tensor::zeros(Shape::nchw(1, out_c, oh, ow));
    let ishape = input.shape();
    if TensorParallel::exec_mode() == ExecMode::SpawnPerCall {
        conv2d_reference_accumulate(input, weights, bias, params, (oh, ow), out.as_mut_slice());
        return Ok(out);
    }
    let packed = PackedConv::pack(weights)?;
    conv2d_accumulate(
        input.as_slice(),
        &packed,
        bias,
        params,
        (ishape.dim(2), ishape.dim(3), oh, ow),
        out.as_mut_slice(),
    );
    Ok(out)
}

/// Validates conv2d operands and returns the output `(out_c, oh, ow)`.
fn conv2d_out_dims(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<(usize, usize, usize)> {
    let ishape = input.shape();
    let wshape = weights.shape();
    if ishape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: ishape.rank(),
        });
    }
    if wshape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wshape.rank(),
        });
    }
    if ishape.dim(0) != 1 {
        return Err(TensorError::Invalid(
            "conv2d supports batch size 1 only".into(),
        ));
    }
    let (in_c, h, w) = (ishape.dim(1), ishape.dim(2), ishape.dim(3));
    let (out_c, w_in_c, kh, kw) = (wshape.dim(0), wshape.dim(1), wshape.dim(2), wshape.dim(3));
    if in_c != w_in_c {
        return Err(TensorError::ShapeMismatch {
            left: ishape.dims().to_vec(),
            right: wshape.dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(TensorError::Invalid(format!(
                "bias length {} does not match {out_c} output channels",
                b.len()
            )));
        }
    }
    Ok((out_c, params.out_size(h, kh), params.out_size(w, kw)))
}

/// One output channel of the convolution, written into its `oh*ow` slice.
/// The per-element arithmetic (tap order, accumulation order, bias add)
/// is identical whether channels run serially or on worker threads, so
/// parallel and single-threaded execution are bit-identical — and packed
/// taps replay the dense scan's row-major order exactly, so packed and
/// dense execution are too.
pub(super) fn conv2d_channel(
    oc: usize,
    idata: &[f32],
    packed: &PackedConv,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    space: (usize, usize, usize, usize),
    ochan: &mut [f32],
) {
    let (h, w, oh, ow) = space;
    let (stride, pad) = (params.stride, params.padding);
    let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
    // Interior output range: every tap of a `kh × kw` kernel lands inside
    // the unpadded input, so the per-tap boundary checks are provably
    // dead there and the inner loop drops them. Border pixels take the
    // checked loop. The pixel-outer traversal writes each output exactly
    // once (so callers need not pre-zero the buffer) and accumulates in
    // the same sequence the pre-pool kernel used — per-`ic` local sums
    // added in channel order, bias last — so no bits change.
    let (oy_lo, oy_hi) = interior_range(oh, h, packed.kh(), stride, pad);
    let (ox_lo, ox_hi) = interior_range(ow, w, packed.kw(), stride, pad);
    let in_c = packed.in_c();
    let finish = |total: f32| finish_bias(total, bias_v);
    // Boundary-checked fallback for border pixels.
    let checked =
        |oy: usize, ox: usize| -> f32 { conv2d_site(oc, idata, packed, params, (h, w), oy, ox) };
    // Interior pixels are register-blocked `LANES` wide: the per-pixel
    // accumulators are fully independent, so blocking amortizes group
    // lookups and loop control without touching any pixel's own
    // floating-point sequence.
    const LANES: usize = 4;
    for oy in 0..oh {
        let orow = oy * ow;
        if oy < oy_lo || oy >= oy_hi {
            for ox in 0..ow {
                ochan[orow + ox] = finish(checked(oy, ox));
            }
            continue;
        }
        for ox in 0..ox_lo {
            ochan[orow + ox] = finish(checked(oy, ox));
        }
        let row_in = (oy * stride - pad) * w;
        let mut ox = ox_lo;
        while ox + LANES <= ox_hi {
            let pixel = row_in + ox * stride - pad;
            let mut total = [0.0f32; LANES];
            for ic in 0..in_c {
                let taps = packed.group(oc, ic);
                if taps.is_empty() {
                    continue;
                }
                let p = ic * h * w + pixel;
                let mut acc = [0.0f32; LANES];
                for t in taps {
                    let off = p + t.r as usize * w + t.c as usize;
                    for (k, a) in acc.iter_mut().enumerate() {
                        // SAFETY: all `LANES` pixels lie in the interior
                        // (`ox + LANES <= ox_hi`), where `interior_range`
                        // bounds `iy < h`, `ix < w` for every tap (tap
                        // coords are `< kh × kw` by `PackedConv`
                        // construction) and the caller validated
                        // `idata.len() == in_c * h * w`.
                        *a += t.v * unsafe { *idata.get_unchecked(off + k * stride) };
                    }
                }
                for (t, a) in total.iter_mut().zip(acc) {
                    *t += a;
                }
            }
            for (k, t) in total.into_iter().enumerate() {
                ochan[orow + ox + k] = finish(t);
            }
            ox += LANES;
        }
        while ox < ox_hi {
            let p = row_in + ox * stride - pad;
            let mut total = 0.0f32;
            for ic in 0..in_c {
                let taps = packed.group(oc, ic);
                if taps.is_empty() {
                    continue;
                }
                let base = ic * h * w + p;
                let mut acc = 0.0f32;
                for t in taps {
                    // SAFETY: interior pixel — same invariant as the
                    // blocked loop above.
                    acc += t.v
                        * unsafe { *idata.get_unchecked(base + t.r as usize * w + t.c as usize) };
                }
                total += acc;
            }
            ochan[orow + ox] = finish(total);
            ox += 1;
        }
        for ox in ox_hi..ow {
            ochan[orow + ox] = finish(checked(oy, ox));
        }
    }
}

/// One output site of the convolution, boundary-checked: per input
/// channel, the packed taps accumulate in row-major kernel order into a
/// local sum, and the per-channel sums join in channel order — the exact
/// sequence every dense path (reference, border, interior fast path)
/// uses. The sparse-activation gather kernel calls this for each active
/// output site, which is what makes sparse and dense execution
/// bit-identical. Bias is excluded; callers apply [`finish_bias`].
pub(super) fn conv2d_site(
    oc: usize,
    idata: &[f32],
    packed: &PackedConv,
    params: Conv2dParams,
    hw: (usize, usize),
    oy: usize,
    ox: usize,
) -> f32 {
    let (h, w) = hw;
    let (stride, pad) = (params.stride, params.padding);
    let (iy0, ix0) = (oy * stride, ox * stride);
    let mut total = 0.0f32;
    for ic in 0..packed.in_c() {
        let taps = packed.group(oc, ic);
        if taps.is_empty() {
            continue;
        }
        let ibase = ic * h * w;
        let mut acc = 0.0f32;
        for t in taps {
            let iy = iy0 + t.r as usize;
            let ix = ix0 + t.c as usize;
            // Padding: translate to unpadded coordinates.
            if iy < pad || ix < pad {
                continue;
            }
            let iy = iy - pad;
            let ix = ix - pad;
            if iy >= h || ix >= w {
                continue;
            }
            acc += t.v * idata[ibase + iy * w + ix];
        }
        total += acc;
    }
    total
}

/// Matching the historical order exactly: bias joins the sum last, and a
/// zero bias performs no add at all (preserving even the sign of a
/// negative-zero total).
pub(super) fn finish_bias(total: f32, bias_v: f32) -> f32 {
    if bias_v != 0.0 {
        total + bias_v
    } else {
        total
    }
}

/// Half-open output range `[lo, hi)` along one axis where a kernel of
/// size `k` stays fully inside the unpadded input of size `i` — i.e.
/// `o * stride - pad >= 0` and `o * stride - pad + k <= i` for every
/// output coordinate `o` in the range.
pub(super) fn interior_range(
    out: usize,
    i: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    let lo = pad.div_ceil(stride).min(out);
    let hi = if i + pad >= k {
        ((i + pad - k) / stride + 1).min(out)
    } else {
        lo
    };
    (lo, hi.max(lo))
}

/// The pre-pool convolution, preserved verbatim: per-call tap extraction
/// (one `Vec` allocation per `(oc, ic)` kernel, every call) followed by
/// the boundary-checked loop on every pixel. [`conv2d`] and
/// [`conv2d_into`] dispatch here under [`ExecMode::SpawnPerCall`], so the
/// baseline mode measures the full historical path — spawn dispatch,
/// per-call weight scan, and the unsplit inner loop — while remaining
/// bit-identical to the packed kernel (same taps, same order, same local
/// accumulator). The bit-identity suites rely on it as the naive oracle.
fn conv2d_reference_channel(
    oc: usize,
    idata: &[f32],
    wdata: &[f32],
    bias: Option<&Tensor>,
    params: Conv2dParams,
    dims: (usize, usize, usize, usize, usize, usize, usize),
    ochan: &mut [f32],
) {
    let (in_c, h, w, kh, kw, oh, ow) = dims;
    let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
    for ic in 0..in_c {
        let kbase = ((oc * in_c) + ic) * kh * kw;
        let mut taps: Vec<(usize, usize, f32)> = Vec::with_capacity(kh * kw);
        for r in 0..kh {
            for c in 0..kw {
                let v = wdata[kbase + r * kw + c];
                if v != 0.0 {
                    taps.push((r, c, v));
                }
            }
        }
        if taps.is_empty() {
            continue;
        }
        let ibase = ic * h * w;
        for oy in 0..oh {
            let iy0 = oy * params.stride;
            for ox in 0..ow {
                let ix0 = ox * params.stride;
                let mut acc = 0.0f32;
                for &(r, c, wv) in &taps {
                    let iy = iy0 + r;
                    let ix = ix0 + c;
                    // Padding: translate to unpadded coordinates.
                    if iy < params.padding || ix < params.padding {
                        continue;
                    }
                    let iy = iy - params.padding;
                    let ix = ix - params.padding;
                    if iy >= h || ix >= w {
                        continue;
                    }
                    acc += wv * idata[ibase + iy * w + ix];
                }
                ochan[oy * ow + ox] += acc;
            }
        }
    }
    if bias_v != 0.0 {
        for v in ochan {
            *v += bias_v;
        }
    }
}

/// Distributes [`conv2d_reference_channel`] over output channels, exactly
/// as the pre-pool implementation did. `input` and `weights` are the full
/// rank-4 tensors (already validated by the caller).
fn conv2d_reference_accumulate(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    out_hw: (usize, usize),
    odata: &mut [f32],
) {
    let (oh, ow) = out_hw;
    let chan = oh * ow;
    if chan == 0 {
        return;
    }
    let (ishape, wshape) = (input.shape(), weights.shape());
    let dims = (
        ishape.dim(1),
        ishape.dim(2),
        ishape.dim(3),
        wshape.dim(2),
        wshape.dim(3),
        oh,
        ow,
    );
    let (idata, wdata) = (input.as_slice(), weights.as_slice());
    let base = SendPtr(odata.as_mut_ptr());
    parallel_for_chunks(wshape.dim(0), move |oc| {
        // SAFETY: identical disjoint-slice argument as `conv2d_accumulate`.
        let ochan = unsafe { std::slice::from_raw_parts_mut(base.get().add(oc * chan), chan) };
        conv2d_reference_channel(oc, idata, wdata, bias, params, dims, ochan);
    });
}

/// Accumulates the convolution of `idata` with `packed` into `odata`
/// (which the caller has already zeroed or freshly allocated),
/// distributing output channels over worker threads via
/// [`parallel_for_chunks`].
fn conv2d_accumulate(
    idata: &[f32],
    packed: &PackedConv,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    space: (usize, usize, usize, usize),
    odata: &mut [f32],
) {
    let (_, _, oh, ow) = space;
    let chan = oh * ow;
    if chan == 0 {
        return;
    }
    let base = SendPtr(odata.as_mut_ptr());
    parallel_for_chunks(packed.out_c(), move |oc| {
        // SAFETY: chunk `oc` derives the disjoint per-channel slice
        // `odata[oc*chan .. (oc+1)*chan]`; the buffer outlives the call
        // because `parallel_for_chunks` blocks until all chunks finish.
        let ochan = unsafe { std::slice::from_raw_parts_mut(base.get().add(oc * chan), chan) };
        conv2d_channel(oc, idata, packed, bias, params, space, ochan);
    });
}

/// Validates a conv2d input/bias pair against packed weights and returns
/// the output spatial size `(oh, ow)`.
pub(super) fn conv2d_packed_dims(
    input: &Tensor,
    packed: &PackedConv,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<(usize, usize)> {
    let ishape = input.shape();
    if ishape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: ishape.rank(),
        });
    }
    if ishape.dim(0) != 1 {
        return Err(TensorError::Invalid(
            "conv2d supports batch size 1 only".into(),
        ));
    }
    if ishape.dim(1) != packed.in_c() {
        return Err(TensorError::ShapeMismatch {
            left: ishape.dims().to_vec(),
            right: vec![packed.out_c(), packed.in_c(), packed.kh(), packed.kw()],
        });
    }
    if let Some(b) = bias {
        if b.len() != packed.out_c() {
            return Err(TensorError::Invalid(format!(
                "bias length {} does not match {} output channels",
                b.len(),
                packed.out_c()
            )));
        }
    }
    Ok((
        params.out_size(ishape.dim(2), packed.kh()),
        params.out_size(ishape.dim(3), packed.kw()),
    ))
}

/// [`conv2d`] into a caller-provided output tensor, so a streaming runtime
/// can reuse activation buffers across frames instead of reallocating.
///
/// When [`TensorParallel`][crate::ops::TensorParallel] is configured with
/// more than one thread, output channels are distributed over the worker
/// pool (or per-call spawned threads, depending on
/// [`ExecMode`][crate::ops::ExecMode]). Each channel's slice is disjoint
/// and its arithmetic order unchanged, so results are bit-identical to
/// serial execution.
///
/// # Errors
///
/// All [`conv2d`] error conditions, plus [`TensorError::ShapeMismatch`]
/// when `out` does not have the expected output shape.
pub fn conv2d_into(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    out: &mut Tensor,
) -> Result<()> {
    let (out_c, oh, ow) = conv2d_out_dims(input, weights, bias, params)?;
    if TensorParallel::exec_mode() == ExecMode::SpawnPerCall {
        let expected = [1, out_c, oh, ow];
        if out.shape().dims() != expected {
            return Err(TensorError::ShapeMismatch {
                left: expected.to_vec(),
                right: out.shape().dims().to_vec(),
            });
        }
        let odata = out.as_mut_slice();
        odata.fill(0.0);
        conv2d_reference_accumulate(input, weights, bias, params, (oh, ow), odata);
        return Ok(());
    }
    let packed = PackedConv::pack(weights)?;
    conv2d_packed_into(input, &packed, bias, params, out)
}

/// [`conv2d_into`] over weights packed once via [`PackedConv::pack`] —
/// the steady-state path: no weight scan, no allocation, reused output.
///
/// # Errors
///
/// All [`conv2d`] error conditions (shapes are validated against the
/// packed dimensions), plus [`TensorError::ShapeMismatch`] when `out`
/// does not have the expected output shape.
pub fn conv2d_packed_into(
    input: &Tensor,
    packed: &PackedConv,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    out: &mut Tensor,
) -> Result<()> {
    let (oh, ow) = conv2d_packed_dims(input, packed, bias, params)?;
    let expected = [1, packed.out_c(), oh, ow];
    if out.shape().dims() != expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.to_vec(),
            right: out.shape().dims().to_vec(),
        });
    }
    let ishape = input.shape();
    let space = (ishape.dim(2), ishape.dim(3), oh, ow);
    // No pre-zeroing: `conv2d_channel` writes every output element.
    conv2d_accumulate(
        input.as_slice(),
        packed,
        bias,
        params,
        space,
        out.as_mut_slice(),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn input_1ch(h: usize, w: usize, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::nchw(1, 1, h, w), data).unwrap()
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let input = input_1ch(3, 3, (1..=9).map(|i| i as f32).collect());
        let mut weights = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        weights.set(&[0, 0, 1, 1], 1.0).unwrap();
        let out = conv2d(&input, &weights, None, Conv2dParams::same(3)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 3, 3]);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn box_filter_sums_neighbourhood() {
        let input = input_1ch(3, 3, vec![1.0; 9]);
        let weights = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(&input, &weights, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice()[0], 9.0);
    }

    #[test]
    fn stride_reduces_output() {
        let input = input_1ch(5, 5, vec![1.0; 25]);
        let weights = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(
            &input,
            &weights,
            None,
            Conv2dParams {
                stride: 2,
                padding: 0,
            },
        )
        .unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn padding_grows_output() {
        let input = input_1ch(3, 3, vec![1.0; 9]);
        let weights = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(
            &input,
            &weights,
            None,
            Conv2dParams {
                stride: 1,
                padding: 1,
            },
        )
        .unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 3, 3]);
        // Corner sees only a 2×2 patch of ones.
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 4.0);
        // Centre sees the full 3×3 patch.
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn bias_added_per_channel() {
        let input = input_1ch(2, 2, vec![0.0; 4]);
        let weights = Tensor::zeros(Shape::nchw(2, 1, 1, 1));
        let bias = Tensor::from_vec(Shape::vector(2), vec![1.5, -2.5]).unwrap();
        let out = conv2d(&input, &weights, Some(&bias), Conv2dParams::default()).unwrap();
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 1.5);
        assert_eq!(out.get(&[0, 1, 0, 0]).unwrap(), -2.5);
    }

    #[test]
    fn multi_channel_accumulates() {
        let input = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![2.0, 3.0]).unwrap();
        let weights = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![10.0, 100.0]).unwrap();
        let out = conv2d(&input, &weights, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.as_slice(), &[320.0]);
    }

    #[test]
    fn pruned_weights_match_dense_with_zeros() {
        // A conv with explicitly-zeroed taps must equal the dense computation.
        let input = input_1ch(4, 4, (0..16).map(|i| i as f32 * 0.3).collect());
        let dense = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| {
            if i % 2 == 0 {
                (i as f32) * 0.1
            } else {
                0.0
            }
        });
        let out = conv2d(&input, &dense, None, Conv2dParams::same(3)).unwrap();
        // Recompute naively.
        let mut naive = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        for oy in 0..4i64 {
            for ox in 0..4i64 {
                let mut acc = 0.0;
                for r in 0..3i64 {
                    for c in 0..3i64 {
                        let iy = oy + r - 1;
                        let ix = ox + c - 1;
                        if (0..4).contains(&iy) && (0..4).contains(&ix) {
                            let wv = dense.get(&[0, 0, r as usize, c as usize]).unwrap();
                            let iv = input.get(&[0, 0, iy as usize, ix as usize]).unwrap();
                            acc += wv * iv;
                        }
                    }
                }
                naive.set(&[0, 0, oy as usize, ox as usize], acc).unwrap();
            }
        }
        assert!(out.max_abs_diff(&naive).unwrap() < 1e-5);
    }

    #[test]
    fn rejects_bad_shapes() {
        let input = Tensor::zeros(Shape::nchw(2, 1, 3, 3));
        let weights = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(conv2d(&input, &weights, None, Conv2dParams::default()).is_err());

        let input = Tensor::zeros(Shape::nchw(1, 2, 3, 3));
        assert!(conv2d(&input, &weights, None, Conv2dParams::default()).is_err());

        let input = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        let bad_bias = Tensor::zeros(Shape::vector(5));
        assert!(conv2d(&input, &weights, Some(&bad_bias), Conv2dParams::default()).is_err());
    }

    #[test]
    fn out_size_handles_non_fitting_kernel() {
        let p = Conv2dParams::default();
        assert_eq!(p.out_size(2, 3), 0);
        assert_eq!(p.out_size(3, 3), 1);
        assert_eq!(Conv2dParams::same(3).out_size(7, 3), 7);
    }

    #[test]
    fn one_by_one_conv_is_channel_mix() {
        // 1×1 convolution = per-pixel linear map over channels (the PFN case).
        let input = Tensor::from_vec(Shape::nchw(1, 2, 1, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weights = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![0.5, 0.25]).unwrap();
        let out = conv2d(&input, &weights, None, Conv2dParams::default()).unwrap();
        assert!(approx_eq(
            out.get(&[0, 0, 0, 0]).unwrap(),
            0.5 * 1.0 + 0.25 * 3.0,
            1e-6
        ));
        assert!(approx_eq(
            out.get(&[0, 0, 0, 1]).unwrap(),
            0.5 * 2.0 + 0.25 * 4.0,
            1e-6
        ));
    }
}
