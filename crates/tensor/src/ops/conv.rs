//! 2-D convolution with sparsity-aware inner loops.

use crate::{Result, Shape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Spatial stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// Stride-1 "same" convolution for odd kernel size `k`.
    pub fn same(k: usize) -> Self {
        Conv2dParams {
            stride: 1,
            padding: k / 2,
        }
    }

    /// Output spatial size for an input of size `i` and kernel size `k`.
    ///
    /// Returns 0 when the kernel does not fit.
    pub fn out_size(&self, i: usize, k: usize) -> usize {
        let padded = i + 2 * self.padding;
        if padded < k {
            0
        } else {
            (padded - k) / self.stride + 1
        }
    }
}

/// Direct 2-D convolution: input `[1, in_c, h, w]`, weights
/// `[out_c, in_c, kh, kw]`, optional per-output-channel bias.
///
/// Zero weights are skipped in the innermost accumulation, so pruned kernels
/// genuinely do less floating-point work — the same effect the paper relies
/// on from hardware weight-compression support (§III-A).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 operands,
/// [`TensorError::ShapeMismatch`] for channel disagreements, and
/// [`TensorError::Invalid`] when the batch dimension is not 1 or the bias
/// length is wrong.
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor> {
    let (out_c, oh, ow) = conv2d_out_dims(input, weights, bias, params)?;
    let mut out = Tensor::zeros(Shape::nchw(1, out_c, oh, ow));
    conv2d_into(input, weights, bias, params, &mut out)?;
    Ok(out)
}

/// Validates conv2d operands and returns the output `(out_c, oh, ow)`.
fn conv2d_out_dims(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<(usize, usize, usize)> {
    let ishape = input.shape();
    let wshape = weights.shape();
    if ishape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: ishape.rank(),
        });
    }
    if wshape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wshape.rank(),
        });
    }
    if ishape.dim(0) != 1 {
        return Err(TensorError::Invalid(
            "conv2d supports batch size 1 only".into(),
        ));
    }
    let (in_c, h, w) = (ishape.dim(1), ishape.dim(2), ishape.dim(3));
    let (out_c, w_in_c, kh, kw) = (wshape.dim(0), wshape.dim(1), wshape.dim(2), wshape.dim(3));
    if in_c != w_in_c {
        return Err(TensorError::ShapeMismatch {
            left: ishape.dims().to_vec(),
            right: wshape.dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(TensorError::Invalid(format!(
                "bias length {} does not match {out_c} output channels",
                b.len()
            )));
        }
    }
    Ok((out_c, params.out_size(h, kh), params.out_size(w, kw)))
}

/// One output channel of the convolution, written into its `oh*ow` slice.
/// The per-element arithmetic (tap extraction, accumulation order, bias
/// add) is identical whether channels run serially or on worker threads,
/// so parallel and single-threaded execution are bit-identical.
#[allow(clippy::too_many_arguments)]
fn conv2d_channel(
    oc: usize,
    idata: &[f32],
    wdata: &[f32],
    bias: Option<&Tensor>,
    params: Conv2dParams,
    dims: (usize, usize, usize, usize, usize, usize, usize),
    ochan: &mut [f32],
) {
    let (in_c, h, w, kh, kw, oh, ow) = dims;
    let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
    // Pre-extract the non-zero weight taps per (out_c, in_c) kernel so the
    // hot loop only visits surviving weights.
    for ic in 0..in_c {
        let kbase = ((oc * in_c) + ic) * kh * kw;
        let mut taps: Vec<(usize, usize, f32)> = Vec::with_capacity(kh * kw);
        for r in 0..kh {
            for c in 0..kw {
                let v = wdata[kbase + r * kw + c];
                if v != 0.0 {
                    taps.push((r, c, v));
                }
            }
        }
        if taps.is_empty() {
            continue;
        }
        let ibase = ic * h * w;
        for oy in 0..oh {
            let iy0 = oy * params.stride;
            for ox in 0..ow {
                let ix0 = ox * params.stride;
                let mut acc = 0.0f32;
                for &(r, c, wv) in &taps {
                    let iy = iy0 + r;
                    let ix = ix0 + c;
                    // Padding: translate to unpadded coordinates.
                    if iy < params.padding || ix < params.padding {
                        continue;
                    }
                    let iy = iy - params.padding;
                    let ix = ix - params.padding;
                    if iy >= h || ix >= w {
                        continue;
                    }
                    acc += wv * idata[ibase + iy * w + ix];
                }
                ochan[oy * ow + ox] += acc;
            }
        }
    }
    if bias_v != 0.0 {
        for v in ochan {
            *v += bias_v;
        }
    }
}

/// [`conv2d`] into a caller-provided output tensor, so a streaming runtime
/// can reuse activation buffers across frames instead of reallocating.
///
/// When [`TensorParallel`][crate::ops::TensorParallel] is configured with
/// more than one thread, output channels are distributed over scoped
/// worker threads. Each channel's slice is disjoint and its arithmetic
/// order unchanged, so results are bit-identical to serial execution.
///
/// # Errors
///
/// All [`conv2d`] error conditions, plus [`TensorError::ShapeMismatch`]
/// when `out` does not have the expected output shape.
pub fn conv2d_into(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    out: &mut Tensor,
) -> Result<()> {
    let (out_c, oh, ow) = conv2d_out_dims(input, weights, bias, params)?;
    let expected = [1, out_c, oh, ow];
    if out.shape().dims() != expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.to_vec(),
            right: out.shape().dims().to_vec(),
        });
    }
    let ishape = input.shape();
    let wshape = weights.shape();
    let dims = (
        ishape.dim(1),
        ishape.dim(2),
        ishape.dim(3),
        wshape.dim(2),
        wshape.dim(3),
        oh,
        ow,
    );
    let idata = input.as_slice();
    let wdata = weights.as_slice();
    let odata = out.as_mut_slice();
    odata.fill(0.0);

    let threads = super::TensorParallel::threads().min(out_c.max(1));
    let chan = oh * ow;
    if threads <= 1 || out_c <= 1 || chan == 0 {
        for (oc, ochan) in odata.chunks_mut(chan.max(1)).enumerate() {
            conv2d_channel(oc, idata, wdata, bias, params, dims, ochan);
        }
        return Ok(());
    }

    // Split the output channels into one contiguous run per worker; the
    // chunks are disjoint `&mut` slices, so no synchronisation is needed.
    let per_worker = out_c.div_ceil(threads);
    std::thread::scope(|scope| {
        for (w_idx, worker_chunk) in odata.chunks_mut(per_worker * chan).enumerate() {
            scope.spawn(move || {
                let oc0 = w_idx * per_worker;
                for (i, ochan) in worker_chunk.chunks_mut(chan).enumerate() {
                    conv2d_channel(oc0 + i, idata, wdata, bias, params, dims, ochan);
                }
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn input_1ch(h: usize, w: usize, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::nchw(1, 1, h, w), data).unwrap()
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let input = input_1ch(3, 3, (1..=9).map(|i| i as f32).collect());
        let mut weights = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        weights.set(&[0, 0, 1, 1], 1.0).unwrap();
        let out = conv2d(&input, &weights, None, Conv2dParams::same(3)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 3, 3]);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn box_filter_sums_neighbourhood() {
        let input = input_1ch(3, 3, vec![1.0; 9]);
        let weights = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(&input, &weights, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice()[0], 9.0);
    }

    #[test]
    fn stride_reduces_output() {
        let input = input_1ch(5, 5, vec![1.0; 25]);
        let weights = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(
            &input,
            &weights,
            None,
            Conv2dParams {
                stride: 2,
                padding: 0,
            },
        )
        .unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn padding_grows_output() {
        let input = input_1ch(3, 3, vec![1.0; 9]);
        let weights = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(
            &input,
            &weights,
            None,
            Conv2dParams {
                stride: 1,
                padding: 1,
            },
        )
        .unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 3, 3]);
        // Corner sees only a 2×2 patch of ones.
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 4.0);
        // Centre sees the full 3×3 patch.
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn bias_added_per_channel() {
        let input = input_1ch(2, 2, vec![0.0; 4]);
        let weights = Tensor::zeros(Shape::nchw(2, 1, 1, 1));
        let bias = Tensor::from_vec(Shape::vector(2), vec![1.5, -2.5]).unwrap();
        let out = conv2d(&input, &weights, Some(&bias), Conv2dParams::default()).unwrap();
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 1.5);
        assert_eq!(out.get(&[0, 1, 0, 0]).unwrap(), -2.5);
    }

    #[test]
    fn multi_channel_accumulates() {
        let input = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![2.0, 3.0]).unwrap();
        let weights = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![10.0, 100.0]).unwrap();
        let out = conv2d(&input, &weights, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.as_slice(), &[320.0]);
    }

    #[test]
    fn pruned_weights_match_dense_with_zeros() {
        // A conv with explicitly-zeroed taps must equal the dense computation.
        let input = input_1ch(4, 4, (0..16).map(|i| i as f32 * 0.3).collect());
        let dense = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| {
            if i % 2 == 0 {
                (i as f32) * 0.1
            } else {
                0.0
            }
        });
        let out = conv2d(&input, &dense, None, Conv2dParams::same(3)).unwrap();
        // Recompute naively.
        let mut naive = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        for oy in 0..4i64 {
            for ox in 0..4i64 {
                let mut acc = 0.0;
                for r in 0..3i64 {
                    for c in 0..3i64 {
                        let iy = oy + r - 1;
                        let ix = ox + c - 1;
                        if (0..4).contains(&iy) && (0..4).contains(&ix) {
                            let wv = dense.get(&[0, 0, r as usize, c as usize]).unwrap();
                            let iv = input.get(&[0, 0, iy as usize, ix as usize]).unwrap();
                            acc += wv * iv;
                        }
                    }
                }
                naive.set(&[0, 0, oy as usize, ox as usize], acc).unwrap();
            }
        }
        assert!(out.max_abs_diff(&naive).unwrap() < 1e-5);
    }

    #[test]
    fn rejects_bad_shapes() {
        let input = Tensor::zeros(Shape::nchw(2, 1, 3, 3));
        let weights = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(conv2d(&input, &weights, None, Conv2dParams::default()).is_err());

        let input = Tensor::zeros(Shape::nchw(1, 2, 3, 3));
        assert!(conv2d(&input, &weights, None, Conv2dParams::default()).is_err());

        let input = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        let bad_bias = Tensor::zeros(Shape::vector(5));
        assert!(conv2d(&input, &weights, Some(&bad_bias), Conv2dParams::default()).is_err());
    }

    #[test]
    fn out_size_handles_non_fitting_kernel() {
        let p = Conv2dParams::default();
        assert_eq!(p.out_size(2, 3), 0);
        assert_eq!(p.out_size(3, 3), 1);
        assert_eq!(Conv2dParams::same(3).out_size(7, 3), 7);
    }

    #[test]
    fn one_by_one_conv_is_channel_mix() {
        // 1×1 convolution = per-pixel linear map over channels (the PFN case).
        let input = Tensor::from_vec(Shape::nchw(1, 2, 1, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weights = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![0.5, 0.25]).unwrap();
        let out = conv2d(&input, &weights, None, Conv2dParams::default()).unwrap();
        assert!(approx_eq(
            out.get(&[0, 0, 0, 0]).unwrap(),
            0.5 * 1.0 + 0.25 * 3.0,
            1e-6
        ));
        assert!(approx_eq(
            out.get(&[0, 0, 0, 1]).unwrap(),
            0.5 * 2.0 + 0.25 * 4.0,
            1e-6
        ));
    }
}
