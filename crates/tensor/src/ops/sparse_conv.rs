//! Gather/scatter convolution over sparse activations.
//!
//! The dense kernels in [`super::conv`] touch every output site even when
//! the input map is almost entirely a constant background. These kernels
//! instead compute only the output sites *reachable* from active input
//! sites (the active set dilated by the kernel footprint, exactly as
//! strided/padded dense conv would spread them) and fill the rest with a
//! per-channel background propagated through the same arithmetic.
//!
//! # Bit-identity argument
//!
//! Each computed site runs [`conv2d_site`] — the same per-site
//! boundary-checked accumulation (row-major tap order per input channel,
//! channel-order joins, bias last) every dense path uses — so active sites
//! match the dense kernel by construction. Inactive sites hold the
//! propagated background `bg_out[oc] = Σ_ic Σ_taps w·bg_in[ic] (+ bias)`,
//! accumulated in the identical order. That equals the dense value at
//! every non-dilated site because:
//!
//! * an **interior** site's receptive field is entirely in-bounds, so its
//!   dense value over an all-background neighbourhood is exactly the
//!   full-tap sum `bg_out[oc]`;
//! * a padded **border** site drops taps. When `bg_in` is all zero bits
//!   (`±0.0`), every tap contributes `w · ±0.0 = ±0.0` and IEEE-754
//!   round-to-nearest sums of zeros starting from `+0.0` stay `+0.0`
//!   regardless of which taps participate — border and interior agree
//!   bit-for-bit. When any `bg_in` channel is nonzero, border sites *are*
//!   different, so [`dilate_active`] force-activates the whole border ring
//!   and they are computed explicitly.

use super::conv::{conv2d_packed_dims, conv2d_site, finish_bias, interior_range};
use super::parallel::{parallel_for_chunks, SendPtr};
use super::Conv2dParams;
use crate::packed::PackedConv;
use crate::sparse_act::SparseActivation;
use crate::{Result, Shape, Tensor, TensorError};

/// Dilates an active input set through a conv: returns the sorted output
/// sites whose receptive field overlaps at least one active input site,
/// plus the output spatial size `(oh, ow)`.
///
/// Input site `(iy, ix)` reaches output `(oy, ox)` iff some kernel tap
/// `(r, c)` satisfies `oy·stride + r - pad == iy` (and likewise for x),
/// i.e. `oy ∈ [⌈(iy + pad + 1 - kh) / stride⌉, ⌊(iy + pad) / stride⌋]`
/// clamped to `[0, oh)`.
///
/// When `background_nonzero`, every non-interior (border) output site is
/// additionally marked active: with a nonzero background, border sites sum
/// fewer taps than the interior and hold a different value, so they must
/// be computed rather than background-filled (see the module docs).
pub fn dilate_active(
    sites: &[u32],
    in_hw: (usize, usize),
    kernel: (usize, usize),
    params: Conv2dParams,
    background_nonzero: bool,
) -> (Vec<u32>, (usize, usize)) {
    let (h, w) = in_hw;
    let (kh, kw) = kernel;
    let (stride, pad) = (params.stride, params.padding);
    let (oh, ow) = (params.out_size(h, kh), params.out_size(w, kw));
    if oh == 0 || ow == 0 {
        return (Vec::new(), (oh, ow));
    }
    let mut mask = vec![false; oh * ow];
    let span = |i: usize, k: usize, out: usize| -> (usize, usize) {
        let lo = (i + pad + 1).saturating_sub(k).div_ceil(stride);
        let hi = ((i + pad) / stride).min(out - 1);
        (lo, hi)
    };
    for &site in sites {
        let (iy, ix) = (site as usize / w, site as usize % w);
        let (y_lo, y_hi) = span(iy, kh, oh);
        let (x_lo, x_hi) = span(ix, kw, ow);
        if y_lo > y_hi || x_lo > x_hi {
            continue;
        }
        for oy in y_lo..=y_hi {
            mask[oy * ow + x_lo..=oy * ow + x_hi].fill(true);
        }
    }
    if background_nonzero {
        let (y_lo, y_hi) = interior_range(oh, h, kh, stride, pad);
        let (x_lo, x_hi) = interior_range(ow, w, kw, stride, pad);
        for oy in 0..oh {
            if oy < y_lo || oy >= y_hi {
                mask[oy * ow..(oy + 1) * ow].fill(true);
            } else {
                mask[oy * ow..oy * ow + x_lo].fill(true);
                mask[oy * ow + x_hi..(oy + 1) * ow].fill(true);
            }
        }
    }
    let out_sites = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &m)| m.then_some(i as u32))
        .collect();
    (out_sites, (oh, ow))
}

/// Propagates a per-channel background through packed conv weights:
/// `bg_out[oc] = Σ_ic Σ_taps w·bg_in[ic] (+ bias)`, accumulated in the
/// exact tap/channel/bias order of the dense kernels.
pub(crate) fn conv_background(
    packed: &PackedConv,
    bias: Option<&Tensor>,
    background: &[f32],
) -> Vec<f32> {
    (0..packed.out_c())
        .map(|oc| {
            let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
            let mut total = 0.0f32;
            for (ic, &bg) in background.iter().enumerate().take(packed.in_c()) {
                let taps = packed.group(oc, ic);
                if taps.is_empty() {
                    continue;
                }
                let mut acc = 0.0f32;
                for t in taps {
                    acc += t.v * bg;
                }
                total += acc;
            }
            finish_bias(total, bias_v)
        })
        .collect()
}

/// The sparse-activation gather kernel's workhorse: convolves a dense
/// input whose inactive sites all hold `background`, computing only the
/// listed `out_sites` (each via the dense per-site arithmetic) and filling
/// every other output site with the propagated background. Writes the
/// full dense output into `out` and returns the output background.
///
/// `out_sites` must be the result of [`dilate_active`] (or a superset of
/// it, sorted and in-range) for the listed/unlisted split to reproduce the
/// dense kernel bit-for-bit — see the module docs. Output channels are
/// distributed over the worker pool; per-site arithmetic is unchanged by
/// thread count.
///
/// # Errors
///
/// All `conv2d` validation errors, plus [`TensorError::Invalid`] for a
/// wrong background length and [`TensorError::ShapeMismatch`] when `out`
/// has the wrong shape.
pub fn conv2d_sparse_act_gather_into(
    input: &Tensor,
    background: &[f32],
    packed: &PackedConv,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    out_sites: &[u32],
    out: &mut Tensor,
) -> Result<Vec<f32>> {
    let (oh, ow) = conv2d_packed_dims(input, packed, bias, params)?;
    if background.len() != packed.in_c() {
        return Err(TensorError::Invalid(format!(
            "background length {} does not match {} input channels",
            background.len(),
            packed.in_c()
        )));
    }
    let expected = [1, packed.out_c(), oh, ow];
    if out.shape().dims() != expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.to_vec(),
            right: out.shape().dims().to_vec(),
        });
    }
    let bg_out = conv_background(packed, bias, background);
    let chan = oh * ow;
    if chan == 0 {
        return Ok(bg_out);
    }
    if let Some(&last) = out_sites.last() {
        if last as usize >= chan {
            return Err(TensorError::Invalid(format!(
                "output site {last} out of range for {oh}×{ow} map"
            )));
        }
    }
    let ishape = input.shape();
    let hw = (ishape.dim(2), ishape.dim(3));
    let (h, w) = hw;
    let idata = input.as_slice();
    let base = SendPtr(out.as_mut_slice().as_mut_ptr());
    let bg_ref = &bg_out;
    let (stride, pad) = (params.stride, params.padding);
    let (oy_lo, oy_hi) = interior_range(oh, h, packed.kh(), stride, pad);
    let (ox_lo, ox_hi) = interior_range(ow, w, packed.kw(), stride, pad);
    let in_c = packed.in_c();
    // Register-block width of the interior fast path — matches the dense
    // kernel's blocking, and like there the per-pixel accumulators are
    // independent so blocking never changes any site's float sequence.
    const LANES: usize = 4;
    parallel_for_chunks(packed.out_c(), move |oc| {
        // SAFETY: chunk `oc` derives the disjoint per-channel slice
        // `odata[oc*chan .. (oc+1)*chan]`; the buffer outlives the call
        // because `parallel_for_chunks` blocks until all chunks finish.
        let ochan = unsafe { std::slice::from_raw_parts_mut(base.get().add(oc * chan), chan) };
        ochan.fill(bg_ref[oc]);
        let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
        // Dilated active sets are unions of horizontal runs (dilate_active
        // fills x-spans), so walk maximal runs of consecutive interior
        // sites and give them the dense kernel's unchecked blocked loop;
        // border sites and singletons take the boundary-checked site
        // kernel. Per-site arithmetic (per-`ic` local sums over row-major
        // taps, joined in channel order, bias last) is the same on every
        // path, so the split is invisible in the output bits.
        let n = out_sites.len();
        let mut k = 0usize;
        while k < n {
            let site = out_sites[k] as usize;
            let (oy, ox) = (site / ow, site % ow);
            if oy < oy_lo || oy >= oy_hi || ox < ox_lo || ox >= ox_hi {
                ochan[site] =
                    finish_bias(conv2d_site(oc, idata, packed, params, hw, oy, ox), bias_v);
                k += 1;
                continue;
            }
            // Maximal run of consecutive interior sites on this row.
            let max_len = ox_hi - ox;
            let mut len = 1usize;
            while len < max_len && k + len < n && out_sites[k + len] as usize == site + len {
                len += 1;
            }
            let row_in = (oy * stride - pad) * w;
            let mut j = 0usize;
            while j + LANES <= len {
                let pixel = row_in + (ox + j) * stride - pad;
                let mut total = [0.0f32; LANES];
                for ic in 0..in_c {
                    let taps = packed.group(oc, ic);
                    if taps.is_empty() {
                        continue;
                    }
                    let p = ic * h * w + pixel;
                    let mut acc = [0.0f32; LANES];
                    for t in taps {
                        let off = p + t.r as usize * w + t.c as usize;
                        for (l, a) in acc.iter_mut().enumerate() {
                            // SAFETY: all `LANES` pixels lie in the
                            // interior (`ox + j + LANES <= ox_hi`), where
                            // `interior_range` bounds every tap in the
                            // unpadded input, and the caller validated
                            // `idata.len() == in_c * h * w`.
                            *a += t.v * unsafe { *idata.get_unchecked(off + l * stride) };
                        }
                    }
                    for (t, a) in total.iter_mut().zip(acc) {
                        *t += a;
                    }
                }
                for (l, t) in total.into_iter().enumerate() {
                    ochan[site + j + l] = finish_bias(t, bias_v);
                }
                j += LANES;
            }
            while j < len {
                let p = row_in + (ox + j) * stride - pad;
                let mut total = 0.0f32;
                for ic in 0..in_c {
                    let taps = packed.group(oc, ic);
                    if taps.is_empty() {
                        continue;
                    }
                    let ibase = ic * h * w + p;
                    let mut acc = 0.0f32;
                    for t in taps {
                        // SAFETY: interior pixel — same invariant as the
                        // blocked loop above.
                        acc += t.v
                            * unsafe {
                                *idata.get_unchecked(ibase + t.r as usize * w + t.c as usize)
                            };
                    }
                    total += acc;
                }
                ochan[site + j] = finish_bias(total, bias_v);
                j += 1;
            }
            k += len;
        }
    });
    Ok(bg_out)
}

/// Sparse-activation convolution over pre-packed weights: zero weights
/// (absent taps) *and* background activations are both skipped. Returns
/// the output as a [`SparseActivation`] whose active set is the dilation
/// of the input's.
///
/// # Errors
///
/// All [`conv2d_sparse_act_gather_into`] error conditions.
pub fn conv2d_sparse_act_packed(
    input: &SparseActivation,
    packed: &PackedConv,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<SparseActivation> {
    let dense_in = input.to_dense();
    let (h, w) = (input.shape().dim(2), input.shape().dim(3));
    let (out_sites, (oh, ow)) = dilate_active(
        input.sites(),
        (h, w),
        (packed.kh(), packed.kw()),
        params,
        input.background_nonzero(),
    );
    let mut out = Tensor::zeros(Shape::nchw(1, packed.out_c(), oh, ow));
    let bg_out = conv2d_sparse_act_gather_into(
        &dense_in,
        input.background(),
        packed,
        bias,
        params,
        &out_sites,
        &mut out,
    )?;
    SparseActivation::from_dense_sites(&out, out_sites, bg_out)
}

/// [`conv2d_sparse_act_packed`] over raw weight tensors (packs them per
/// call) — the convenience entry point mirroring [`super::conv2d`].
///
/// # Errors
///
/// All [`conv2d_sparse_act_packed`] error conditions, plus packing errors
/// for malformed weight tensors.
pub fn conv2d_sparse_act(
    input: &SparseActivation,
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<SparseActivation> {
    let packed = PackedConv::pack(weights)?;
    conv2d_sparse_act_packed(input, &packed, bias, params)
}

#[cfg(test)]
mod tests {
    use super::super::conv2d;
    use super::*;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn sparse_input(c: usize, h: usize, w: usize, sites: &[u32], seed: u32) -> SparseActivation {
        let mut dense = Tensor::zeros(Shape::nchw(1, c, h, w));
        let data = dense.as_mut_slice();
        for (k, &site) in sites.iter().enumerate() {
            for ch in 0..c {
                let v = ((seed as f32 + k as f32 * 1.7 + ch as f32 * 0.31).sin()) * 2.0;
                data[ch * h * w + site as usize] = if v == 0.0 { 1.0 } else { v };
            }
        }
        SparseActivation::from_dense(&dense, vec![0.0; c]).unwrap()
    }

    fn weights(out_c: usize, in_c: usize, k: usize, seed: f32) -> Tensor {
        Tensor::from_fn(Shape::nchw(out_c, in_c, k, k), |i| {
            // Mix of zero (pruned) and nonzero taps.
            if i % 3 == 0 {
                0.0
            } else {
                (i as f32 * 0.13 + seed).cos()
            }
        })
    }

    /// Dense-oracle identity for one geometry: raw bits everywhere, and
    /// the active set covers every site where dense differs from bg.
    fn check_geometry(k: usize, stride: usize, padding: usize, bias: Option<Tensor>) {
        let (c_in, c_out, h, w) = (3, 4, 9, 11);
        let params = Conv2dParams { stride, padding };
        let sites = [0u32, 5, 37, 38, 39, 60, 97];
        let sp = sparse_input(c_in, h, w, &sites, 3);
        let wts = weights(c_out, c_in, k, 0.4);
        let dense_out = conv2d(&sp.to_dense(), &wts, bias.as_ref(), params).unwrap();
        let sparse_out = conv2d_sparse_act(&sp, &wts, bias.as_ref(), params).unwrap();
        assert_eq!(
            bits(&sparse_out.to_dense()),
            bits(&dense_out),
            "k{k} s{stride} p{padding}"
        );
        // Dilation correctness: superset allowed, never subset.
        let (oh, ow) = (dense_out.shape().dim(2), dense_out.shape().dim(3));
        let odata = dense_out.as_slice();
        let bg = sparse_out.background();
        for site in 0..oh * ow {
            let differs =
                (0..c_out).any(|oc| odata[oc * oh * ow + site].to_bits() != bg[oc].to_bits());
            if differs {
                assert!(
                    sparse_out.sites().binary_search(&(site as u32)).is_ok(),
                    "k{k} s{stride} p{padding}: site {site} differs from bg but is inactive"
                );
            }
        }
    }

    #[test]
    fn backbone_geometry_3x3_s1_identity_and_dilation() {
        check_geometry(3, 1, 1, None);
    }

    #[test]
    fn backbone_geometry_3x3_s2_identity_and_dilation() {
        check_geometry(3, 2, 1, None);
    }

    #[test]
    fn backbone_geometry_1x1_identity_and_dilation() {
        check_geometry(1, 1, 0, None);
    }

    #[test]
    fn nonzero_bias_activates_border_and_matches_dense() {
        // A nonzero bias makes the background nonzero downstream; with a
        // nonzero *input* background the border ring must be computed.
        let bias = Tensor::from_vec(Shape::vector(4), vec![0.5, -1.25, 0.0, 2.0]).unwrap();
        check_geometry(3, 1, 1, Some(bias));

        // Now feed a nonzero-background input directly.
        let params = Conv2dParams::same(3);
        let (c, h, w) = (2, 7, 7);
        let mut dense = Tensor::full(Shape::nchw(1, c, h, w), 0.75);
        dense.as_mut_slice()[3 * w + 4] = 2.5;
        let sp = SparseActivation::from_dense(&dense, vec![0.75; c]).unwrap();
        assert_eq!(sp.len(), 1);
        assert!(sp.background_nonzero());
        let wts = weights(3, c, 3, 1.1);
        let dense_out = conv2d(&dense, &wts, None, params).unwrap();
        let sparse_out = conv2d_sparse_act(&sp, &wts, None, params).unwrap();
        assert_eq!(bits(&sparse_out.to_dense()), bits(&dense_out));
    }

    #[test]
    fn empty_active_set_yields_background_map() {
        let sp =
            SparseActivation::from_dense(&Tensor::zeros(Shape::nchw(1, 2, 6, 6)), vec![0.0; 2])
                .unwrap();
        let wts = weights(3, 2, 3, 0.9);
        let out = conv2d_sparse_act(&sp, &wts, None, Conv2dParams::same(3)).unwrap();
        assert!(out.is_empty());
        let dense = conv2d(&sp.to_dense(), &wts, None, Conv2dParams::same(3)).unwrap();
        assert_eq!(bits(&out.to_dense()), bits(&dense));
    }

    #[test]
    fn dilation_spans_match_brute_force() {
        // Every (kernel, stride, pad) small case: dilate_active must equal
        // the brute-force receptive-field scan.
        for &(k, s, p) in &[
            (3usize, 1usize, 1usize),
            (3, 2, 1),
            (1, 1, 0),
            (5, 2, 2),
            (3, 1, 0),
        ] {
            let (h, w) = (8, 6);
            let params = Conv2dParams {
                stride: s,
                padding: p,
            };
            let sites: Vec<u32> = vec![0, 7, 23, 41, 47];
            let (got, (oh, ow)) = dilate_active(&sites, (h, w), (k, k), params, false);
            let mut expect = Vec::new();
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut hit = false;
                    for r in 0..k {
                        for c in 0..k {
                            let (iy, ix) = (oy * s + r, ox * s + c);
                            if iy < p || ix < p {
                                continue;
                            }
                            let (iy, ix) = (iy - p, ix - p);
                            if iy < h && ix < w && sites.contains(&((iy * w + ix) as u32)) {
                                hit = true;
                            }
                        }
                    }
                    if hit {
                        expect.push((oy * ow + ox) as u32);
                    }
                }
            }
            assert_eq!(got, expect, "k{k} s{s} p{p}");
        }
    }
}
