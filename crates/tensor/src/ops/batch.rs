//! Batched execution: the N-dimension of the compute stack.
//!
//! Every kernel here runs a *batch* of same-shaped frames through the
//! corresponding single-frame op while amortizing the per-call fixed work
//! (weight-tap extraction for convolutions, row walks for linear layers)
//! across the batch. The per-frame arithmetic — tap order, accumulation
//! order, bias add — is exactly the single-frame kernel's, so batched and
//! serial execution are **bit-identical** frame by frame; the property
//! tests and the streaming bit-identity suite assert it.
//!
//! Batches are slices of per-frame tensors rather than one `[N, C, H, W]`
//! tensor: the streaming runtime admits frames individually, fuses them
//! for the backbone pass, then splits them again for per-frame decode, so
//! per-frame buffers avoid a gather/scatter copy on both ends.

use crate::ops::conv::{conv2d_channel, conv2d_packed_dims, Conv2dParams};
use crate::ops::parallel::{parallel_for_chunks, SendPtr};
use crate::packed::{PackedConv, PackedQuantConv, PackedTaps};
use crate::quant::QuantizedTensor;
use crate::{Result, Shape, Tensor, TensorError};

/// Validates one conv2d operand set and returns `(out_c, oh, ow)`.
/// Mirrors the single-frame validation in `ops::conv`.
fn conv_dims(
    input: &Tensor,
    wdims: &[usize],
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<(usize, usize, usize)> {
    let ishape = input.shape();
    if ishape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: ishape.rank(),
        });
    }
    if ishape.dim(0) != 1 {
        return Err(TensorError::Invalid(
            "batched conv2d takes per-frame [1, C, H, W] tensors".into(),
        ));
    }
    let (out_c, w_in_c, kh, kw) = (wdims[0], wdims[1], wdims[2], wdims[3]);
    if ishape.dim(1) != w_in_c {
        return Err(TensorError::ShapeMismatch {
            left: ishape.dims().to_vec(),
            right: wdims.to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(TensorError::Invalid(format!(
                "bias length {} does not match {out_c} output channels",
                b.len()
            )));
        }
    }
    Ok((
        out_c,
        params.out_size(ishape.dim(2), kh),
        params.out_size(ishape.dim(3), kw),
    ))
}

/// Checks a batch of inputs share one shape and returns that shape's dims.
fn uniform_batch_dims(inputs: &[&Tensor]) -> Result<Vec<usize>> {
    let first = inputs
        .first()
        .ok_or_else(|| TensorError::Invalid("batched op needs at least one frame".into()))?;
    for t in &inputs[1..] {
        if t.shape() != first.shape() {
            return Err(TensorError::ShapeMismatch {
                left: first.shape().dims().to_vec(),
                right: t.shape().dims().to_vec(),
            });
        }
    }
    Ok(first.shape().dims().to_vec())
}

/// Batched [`conv2d`][crate::ops::conv2d]: runs every frame of `inputs`
/// (each `[1, in_c, h, w]`, all the same shape) against one weight tensor.
///
/// The non-zero weight taps of each `(out_c, in_c)` kernel are extracted
/// **once** and reused for every frame — the per-layer fixed cost the
/// paper's deployment targets amortize by batching. Per frame, the tap
/// visit order and accumulation order are identical to the single-frame
/// kernel, so each output equals `conv2d(inputs[i], …)` bit for bit.
///
/// # Errors
///
/// All single-frame `conv2d` error conditions, plus
/// [`TensorError::ShapeMismatch`] when the frames disagree in shape and
/// [`TensorError::Invalid`] on an empty batch.
pub fn conv2d_batch(
    inputs: &[&Tensor],
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Vec<Tensor>> {
    let wshape = weights.shape();
    if wshape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wshape.rank(),
        });
    }
    uniform_batch_dims(inputs)?;
    let (out_c, oh, ow) = conv_dims(inputs[0], wshape.dims(), bias, params)?;
    let mut outs: Vec<Tensor> = (0..inputs.len())
        .map(|_| Tensor::zeros(Shape::nchw(1, out_c, oh, ow)))
        .collect();
    conv2d_batch_into(inputs, weights, bias, params, &mut outs)?;
    Ok(outs)
}

/// [`conv2d_batch`] into caller-provided per-frame output tensors, so the
/// streaming runtime can reuse activation buffers across batches.
///
/// # Errors
///
/// All [`conv2d_batch`] error conditions, plus
/// [`TensorError::ShapeMismatch`] when `outs` disagrees in length or any
/// output tensor has the wrong shape.
pub fn conv2d_batch_into(
    inputs: &[&Tensor],
    weights: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    outs: &mut [Tensor],
) -> Result<()> {
    let wshape = weights.shape();
    if wshape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wshape.rank(),
        });
    }
    let packed = PackedConv::pack(weights)?;
    conv2d_packed_batch_into(inputs, &packed, bias, params, outs)
}

/// [`conv2d_batch_into`] over weights packed once via
/// [`PackedConv::pack`] — the steady-state batched path: no weight scan,
/// no allocation, reused per-frame outputs. Frames are distributed over
/// worker threads; each frame's arithmetic is exactly the single-frame
/// kernel's, so results stay bit-identical at any thread count.
///
/// # Errors
///
/// All [`conv2d_batch_into`] error conditions (shapes validated against
/// the packed dimensions).
pub fn conv2d_packed_batch_into(
    inputs: &[&Tensor],
    packed: &PackedConv,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    outs: &mut [Tensor],
) -> Result<()> {
    uniform_batch_dims(inputs)?;
    let (oh, ow) = conv2d_packed_dims(inputs[0], packed, bias, params)?;
    let out_c = packed.out_c();
    if outs.len() != inputs.len() {
        return Err(TensorError::Invalid(format!(
            "batched conv2d got {} inputs but {} outputs",
            inputs.len(),
            outs.len()
        )));
    }
    let expected = [1, out_c, oh, ow];
    for out in outs.iter() {
        if out.shape().dims() != expected {
            return Err(TensorError::ShapeMismatch {
                left: expected.to_vec(),
                right: out.shape().dims().to_vec(),
            });
        }
    }
    let ishape = inputs[0].shape();
    let space = (ishape.dim(2), ishape.dim(3), oh, ow);
    // No pre-zeroing: `conv2d_channel` writes every output element.
    let chan = oh * ow;
    if chan == 0 {
        return Ok(());
    }
    let base = SendPtr(outs.as_mut_ptr());
    parallel_for_chunks(inputs.len(), move |f| {
        // SAFETY: frame `f` exclusively owns `outs[f]`; the slice outlives
        // the call because `parallel_for_chunks` blocks until done.
        let out = unsafe { &mut *base.get().add(f) };
        let idata = inputs[f].as_slice();
        let odata = out.as_mut_slice();
        for oc in 0..out_c {
            let ochan = &mut odata[oc * chan..(oc + 1) * chan];
            conv2d_channel(oc, idata, packed, bias, params, space, ochan);
        }
    });
    Ok(())
}

/// Batched [`linear`][crate::ops::linear]: every frame (rank-1, same
/// length) through one weight matrix, walking each weight row once per
/// batch instead of once per frame. Bit-identical per frame to the serial
/// kernel.
///
/// # Errors
///
/// All single-frame `linear` error conditions, plus batch-uniformity and
/// empty-batch errors as in [`conv2d_batch`].
pub fn linear_batch(
    inputs: &[&Tensor],
    weights: &Tensor,
    bias: Option<&Tensor>,
) -> Result<Vec<Tensor>> {
    let dims = uniform_batch_dims(inputs)?;
    if dims.len() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: dims.len(),
        });
    }
    if weights.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: weights.shape().rank(),
        });
    }
    let in_f = dims[0];
    let (out_f, w_in) = (weights.shape().dim(0), weights.shape().dim(1));
    if w_in != in_f {
        return Err(TensorError::ShapeMismatch {
            left: weights.shape().dims().to_vec(),
            right: vec![out_f, in_f],
        });
    }
    if let Some(b) = bias {
        if b.len() != out_f {
            return Err(TensorError::ShapeMismatch {
                left: b.shape().dims().to_vec(),
                right: vec![out_f],
            });
        }
    }
    let w = weights.as_slice();
    let mut outs = vec![vec![0.0f32; out_f]; inputs.len()];
    for o in 0..out_f {
        let row = &w[o * in_f..(o + 1) * in_f];
        let bias_v = bias.map_or(0.0, |b| b.as_slice()[o]);
        for (input, out) in inputs.iter().zip(outs.iter_mut()) {
            let x = input.as_slice();
            let mut acc = 0.0;
            for (wv, xv) in row.iter().zip(x) {
                if *wv != 0.0 {
                    acc += wv * xv;
                }
            }
            out[o] = acc + bias_v;
        }
    }
    outs.into_iter()
        .map(|o| Tensor::from_vec(Shape::vector(out_f), o))
        .collect()
}

/// Batched [`max_pool2d`][crate::ops::max_pool2d] over same-shaped frames.
///
/// # Errors
///
/// Single-frame pooling errors plus batch-uniformity/empty-batch errors.
pub fn max_pool2d_batch(inputs: &[&Tensor], k: usize, stride: usize) -> Result<Vec<Tensor>> {
    uniform_batch_dims(inputs)?;
    inputs
        .iter()
        .map(|t| crate::ops::max_pool2d(t, k, stride))
        .collect()
}

/// Batched [`avg_pool2d`][crate::ops::avg_pool2d] over same-shaped frames.
///
/// # Errors
///
/// Single-frame pooling errors plus batch-uniformity/empty-batch errors.
pub fn avg_pool2d_batch(inputs: &[&Tensor], k: usize, stride: usize) -> Result<Vec<Tensor>> {
    uniform_batch_dims(inputs)?;
    inputs
        .iter()
        .map(|t| crate::ops::avg_pool2d(t, k, stride))
        .collect()
}

/// Batched [`quantized_conv2d`][crate::ops::quantized_conv2d]: each frame
/// is quantized with its own per-tensor activation scale (exactly as the
/// serial kernel does), while the integer weight taps are extracted once
/// per batch. Bit-identical per frame to the serial int-domain kernel.
///
/// # Errors
///
/// All serial `quantized_conv2d` error conditions plus
/// batch-uniformity/empty-batch errors.
pub fn quantized_conv2d_batch(
    inputs: &[&Tensor],
    weights: &QuantizedTensor,
    bias: Option<&Tensor>,
    act_bits: u8,
    params: Conv2dParams,
) -> Result<Vec<Tensor>> {
    let wdims = weights.shape().dims().to_vec();
    if wdims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: wdims.len(),
        });
    }
    uniform_batch_dims(inputs)?;
    let (out_c, oh, ow) = conv_dims(inputs[0], &wdims, bias, params)?;
    let ishape = inputs[0].shape();
    let space = (ishape.dim(2), ishape.dim(3), oh, ow);

    // Integer weight taps packed once per call instead of re-scanned per
    // (oc, ic) pair; per-frame activation quantization keeps each frame's
    // own symmetric scale, matching the serial kernel's behaviour exactly.
    let packed = PackedQuantConv::pack(weights)?;
    let quantized: Vec<QuantizedTensor> = inputs
        .iter()
        .map(|t| QuantizedTensor::quantize(t, act_bits))
        .collect::<Result<_>>()?;

    let mut outs: Vec<Tensor> = (0..inputs.len())
        .map(|_| Tensor::zeros(Shape::nchw(1, out_c, oh, ow)))
        .collect();
    let chan = oh * ow;
    if chan == 0 {
        return Ok(outs);
    }
    let packed = &packed;
    let quantized = &quantized;
    let base = SendPtr(outs.as_mut_ptr());
    parallel_for_chunks(inputs.len(), move |f| {
        // SAFETY: frame `f` exclusively owns `outs[f]`; the vector outlives
        // the call because `parallel_for_chunks` blocks until done.
        let out = unsafe { &mut *base.get().add(f) };
        let qin = &quantized[f];
        let scale = packed.scale() * qin.scale();
        let icodes = qin.codes();
        let odata = out.as_mut_slice();
        for oc in 0..out_c {
            let ochan = &mut odata[oc * chan..(oc + 1) * chan];
            quantized_conv2d_channel(oc, icodes, packed, scale, bias, params, space, ochan);
        }
    });
    Ok(outs)
}

/// One output channel of the int-domain convolution: `i64` accumulation
/// over packed integer taps, one rescale per output element, bias after —
/// exactly the serial kernel's per-element arithmetic.
#[allow(clippy::too_many_arguments)]
fn quantized_conv2d_channel(
    oc: usize,
    icodes: &[i32],
    packed: &PackedTaps<i64>,
    scale: f32,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    space: (usize, usize, usize, usize),
    ochan: &mut [f32],
) {
    let (h, w, oh, ow) = space;
    let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
    for ic in 0..packed.in_c() {
        let taps = packed.group(oc, ic);
        if taps.is_empty() {
            continue;
        }
        let ibase = ic * h * w;
        for oy in 0..oh {
            let iy0 = oy * params.stride;
            for ox in 0..ow {
                let ix0 = ox * params.stride;
                let mut acc = 0i64;
                for t in taps {
                    let iy = iy0 + t.r as usize;
                    let ix = ix0 + t.c as usize;
                    if iy < params.padding || ix < params.padding {
                        continue;
                    }
                    let iy = iy - params.padding;
                    let ix = ix - params.padding;
                    if iy >= h || ix >= w {
                        continue;
                    }
                    acc += t.v * i64::from(icodes[ibase + iy * w + ix]);
                }
                // Integer accumulation, one rescale into the real
                // domain — the TensorRT-style int path.
                ochan[oy * ow + ox] += acc as f32 * scale;
            }
        }
    }
    if bias_v != 0.0 {
        for v in ochan {
            *v += bias_v;
        }
    }
}

/// Batched [`quantized_linear`][crate::ops::quantized_linear]: per-frame
/// activation scales, one integer row walk per batch. Bit-identical per
/// frame to the serial int-domain kernel.
///
/// # Errors
///
/// All serial `quantized_linear` error conditions plus
/// batch-uniformity/empty-batch errors.
pub fn quantized_linear_batch(
    inputs: &[&Tensor],
    weights: &QuantizedTensor,
    bias: Option<&Tensor>,
    act_bits: u8,
) -> Result<Vec<Tensor>> {
    let dims = uniform_batch_dims(inputs)?;
    if dims.len() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: dims.len(),
        });
    }
    let wdims = weights.shape().dims();
    if wdims.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: wdims.len(),
        });
    }
    let in_f = dims[0];
    let (out_f, w_in) = (wdims[0], wdims[1]);
    if w_in != in_f {
        return Err(TensorError::ShapeMismatch {
            left: wdims.to_vec(),
            right: vec![out_f, in_f],
        });
    }
    if let Some(b) = bias {
        if b.len() != out_f {
            return Err(TensorError::ShapeMismatch {
                left: b.shape().dims().to_vec(),
                right: vec![out_f],
            });
        }
    }
    let quantized: Vec<QuantizedTensor> = inputs
        .iter()
        .map(|t| QuantizedTensor::quantize(t, act_bits))
        .collect::<Result<_>>()?;
    let wcodes = weights.codes();
    let mut outs = vec![vec![0.0f32; out_f]; inputs.len()];
    for o in 0..out_f {
        let row = &wcodes[o * in_f..(o + 1) * in_f];
        let bias_v = bias.map_or(0.0, |b| b.as_slice()[o]);
        for (qin, out) in quantized.iter().zip(outs.iter_mut()) {
            let scale = weights.scale() * qin.scale();
            let mut acc = 0i64;
            for (qw, qx) in row.iter().zip(qin.codes()) {
                if *qw != 0 {
                    acc += i64::from(*qw) * i64::from(*qx);
                }
            }
            out[o] = acc as f32 * scale + bias_v;
        }
    }
    outs.into_iter()
        .map(|o| Tensor::from_vec(Shape::vector(out_f), o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{avg_pool2d, conv2d, linear, max_pool2d, quantized_conv2d, quantized_linear};
    use rand::{rngs::StdRng, SeedableRng};

    fn frames(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Tensor::uniform(Shape::nchw(1, c, h, w), -1.0, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn batched_conv_matches_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = Tensor::uniform(Shape::nchw(3, 2, 3, 3), -0.5, 0.5, &mut rng);
        let bias = Tensor::uniform(Shape::vector(3), -0.1, 0.1, &mut rng);
        let inputs = frames(4, 2, 6, 5, 11);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let p = Conv2dParams::same(3);
        let batched = conv2d_batch(&refs, &weights, Some(&bias), p).unwrap();
        for (b, x) in batched.iter().zip(&inputs) {
            let serial = conv2d(x, &weights, Some(&bias), p).unwrap();
            assert_eq!(b.as_slice(), serial.as_slice());
        }
    }

    #[test]
    fn batched_conv_rejects_mixed_shapes_and_empty_batches() {
        let a = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        let b = Tensor::zeros(Shape::nchw(1, 1, 5, 5));
        let w = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(conv2d_batch(&[&a, &b], &w, None, Conv2dParams::default()).is_err());
        assert!(conv2d_batch(&[], &w, None, Conv2dParams::default()).is_err());
    }

    #[test]
    fn batched_conv_into_reuses_buffers_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = Tensor::uniform(Shape::nchw(2, 1, 3, 3), -0.5, 0.5, &mut rng);
        let p = Conv2dParams::same(3);
        let mut outs: Vec<Tensor> = (0..2)
            .map(|_| Tensor::zeros(Shape::nchw(1, 2, 4, 4)))
            .collect();
        for seed in 0..3 {
            let inputs = frames(2, 1, 4, 4, seed);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            conv2d_batch_into(&refs, &weights, None, p, &mut outs).unwrap();
            for (out, x) in outs.iter().zip(&inputs) {
                let serial = conv2d(x, &weights, None, p).unwrap();
                assert_eq!(out.as_slice(), serial.as_slice(), "seed {seed}");
            }
        }
    }

    #[test]
    fn batched_linear_matches_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = Tensor::uniform(Shape::matrix(4, 6), -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(Shape::vector(4), -0.3, 0.3, &mut rng);
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::uniform(Shape::vector(6), -1.0, 1.0, &mut rng))
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = linear_batch(&refs, &weights, Some(&bias)).unwrap();
        for (b, x) in batched.iter().zip(&inputs) {
            assert_eq!(
                b.as_slice(),
                linear(x, &weights, Some(&bias)).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn batched_pools_match_serial_bitwise() {
        let inputs = frames(3, 2, 6, 6, 17);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        for (b, x) in max_pool2d_batch(&refs, 2, 2).unwrap().iter().zip(&inputs) {
            assert_eq!(b.as_slice(), max_pool2d(x, 2, 2).unwrap().as_slice());
        }
        for (b, x) in avg_pool2d_batch(&refs, 2, 2).unwrap().iter().zip(&inputs) {
            assert_eq!(b.as_slice(), avg_pool2d(x, 2, 2).unwrap().as_slice());
        }
    }

    #[test]
    fn batched_quantized_conv_matches_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        let wf = Tensor::uniform(Shape::nchw(2, 2, 3, 3), -0.5, 0.5, &mut rng);
        let weights = QuantizedTensor::quantize(&wf, 8).unwrap();
        let bias = Tensor::uniform(Shape::vector(2), -0.1, 0.1, &mut rng);
        let inputs = frames(4, 2, 5, 5, 29);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let p = Conv2dParams::same(3);
        let batched = quantized_conv2d_batch(&refs, &weights, Some(&bias), 8, p).unwrap();
        for (b, x) in batched.iter().zip(&inputs) {
            let serial = quantized_conv2d(x, &weights, Some(&bias), 8, p).unwrap();
            assert_eq!(b.as_slice(), serial.as_slice());
        }
    }

    #[test]
    fn batched_quantized_linear_matches_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let wf = Tensor::uniform(Shape::matrix(3, 5), -1.0, 1.0, &mut rng);
        let weights = QuantizedTensor::quantize(&wf, 6).unwrap();
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::uniform(Shape::vector(5), -2.0, 2.0, &mut rng))
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = quantized_linear_batch(&refs, &weights, None, 6).unwrap();
        for (b, x) in batched.iter().zip(&inputs) {
            let serial = quantized_linear(x, &weights, None, 6).unwrap();
            assert_eq!(b.as_slice(), serial.as_slice());
        }
    }
}
