//! Neural-network compute kernels over [`crate::Tensor`].
//!
//! Each operation takes NCHW activations (batch is always 1 in this
//! workspace — single-frame AV inference) and reports enough cost metadata
//! for the hardware model: multiply-accumulate counts that honour weight
//! sparsity, mirroring how a structured-sparsity runtime skips zero weights.

mod activation;
mod conv;
mod linear;
mod norm;
mod parallel;
mod pool;

pub use activation::{leaky_relu, relu, sigmoid};
pub use conv::{conv2d, conv2d_into, Conv2dParams};
pub use linear::linear;
pub use norm::{batch_norm, BatchNormParams};
pub use parallel::TensorParallel;
pub use pool::{avg_pool2d, max_pool2d};
