//! Neural-network compute kernels over [`crate::Tensor`].
//!
//! Each operation takes NCHW activations (batch 1 per frame — single-frame
//! AV inference) and reports enough cost metadata for the hardware model:
//! multiply-accumulate counts that honour weight sparsity, mirroring how a
//! structured-sparsity runtime skips zero weights. The `*_batch` variants
//! run a slice of same-shaped frames through one kernel invocation,
//! amortizing per-call fixed work while staying bit-identical per frame;
//! the `quantized_*` variants execute pruned-and-quantized kernels in the
//! integer domain.

mod activation;
mod batch;
mod conv;
mod linear;
mod norm;
mod parallel;
mod pool;
mod quantized;
mod sparse_conv;

pub use activation::{leaky_relu, relu, relu_into, sigmoid};
pub use batch::{
    avg_pool2d_batch, conv2d_batch, conv2d_batch_into, conv2d_packed_batch_into, linear_batch,
    max_pool2d_batch, quantized_conv2d_batch, quantized_linear_batch,
};
pub use conv::{conv2d, conv2d_into, conv2d_packed_into, Conv2dParams};
pub use linear::{linear, linear_into};
pub use norm::{batch_norm, batch_norm_into, BatchNormParams};
pub use parallel::{parallel_for_chunks, ChunkPanic, ExecMode, TensorParallel};
pub use pool::{avg_pool2d, max_pool2d, max_pool2d_into};
pub use quantized::{quantized_conv2d, quantized_linear};
pub use sparse_conv::{
    conv2d_sparse_act, conv2d_sparse_act_gather_into, conv2d_sparse_act_packed, dilate_active,
};
