//! Spatial pooling over NCHW activations.

use crate::{Result, Shape, Tensor, TensorError};

/// Validates pooling operands and returns `(c, h, w, oh, ow)`.
fn pool2d_dims(
    input: &Tensor,
    k: usize,
    stride: usize,
) -> Result<(usize, usize, usize, usize, usize)> {
    let shape = input.shape();
    if shape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: shape.rank(),
        });
    }
    if shape.dim(0) != 1 {
        return Err(TensorError::Invalid(
            "pooling supports batch size 1 only".into(),
        ));
    }
    if k == 0 || stride == 0 {
        return Err(TensorError::Invalid(
            "pool kernel and stride must be non-zero".into(),
        ));
    }
    let (c, h, w) = (shape.dim(1), shape.dim(2), shape.dim(3));
    if h < k || w < k {
        return Err(TensorError::Invalid(format!(
            "pool window {k} does not fit input {h}×{w}"
        )));
    }
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    Ok((c, h, w, oh, ow))
}

fn pool2d_into(
    input: &Tensor,
    k: usize,
    stride: usize,
    init: f32,
    fold: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
    out: &mut Tensor,
) -> Result<()> {
    let (c, h, w, oh, ow) = pool2d_dims(input, k, stride)?;
    let expected = [1, c, oh, ow];
    if out.shape().dims() != expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.to_vec(),
            right: out.shape().dims().to_vec(),
        });
    }
    let idata = input.as_slice();
    let odata = out.as_mut_slice();
    for ch in 0..c {
        let ibase = ch * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = init;
                for r in 0..k {
                    for col in 0..k {
                        let iy = oy * stride + r;
                        let ix = ox * stride + col;
                        acc = fold(acc, idata[ibase + iy * w + ix]);
                    }
                }
                odata[(ch * oh + oy) * ow + ox] = finish(acc, k * k);
            }
        }
    }
    Ok(())
}

fn pool2d(
    input: &Tensor,
    k: usize,
    stride: usize,
    init: f32,
    fold: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Result<Tensor> {
    let (c, _, _, oh, ow) = pool2d_dims(input, k, stride)?;
    let mut out = Tensor::zeros(Shape::nchw(1, c, oh, ow));
    pool2d_into(input, k, stride, init, fold, finish, &mut out)?;
    Ok(out)
}

/// Max-pooling with a `k × k` window and the given stride.
///
/// # Errors
///
/// Returns an error for non-NCHW inputs, zero kernel/stride, or windows
/// larger than the input.
pub fn max_pool2d(input: &Tensor, k: usize, stride: usize) -> Result<Tensor> {
    pool2d(input, k, stride, f32::NEG_INFINITY, f32::max, |acc, _| acc)
}

/// [`max_pool2d`] into a caller-provided output tensor — the
/// zero-allocation steady-state path.
///
/// # Errors
///
/// All [`max_pool2d`] error conditions, plus
/// [`TensorError::ShapeMismatch`] when `out` has the wrong shape.
pub fn max_pool2d_into(input: &Tensor, k: usize, stride: usize, out: &mut Tensor) -> Result<()> {
    pool2d_into(
        input,
        k,
        stride,
        f32::NEG_INFINITY,
        f32::max,
        |acc, _| acc,
        out,
    )
}

/// Average-pooling with a `k × k` window and the given stride.
///
/// # Errors
///
/// Same conditions as [`max_pool2d`].
pub fn avg_pool2d(input: &Tensor, k: usize, stride: usize) -> Result<Tensor> {
    pool2d(input, k, stride, 0.0, |a, b| a + b, |acc, n| acc / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input4() -> Tensor {
        Tensor::from_vec(Shape::nchw(1, 1, 4, 4), (0..16).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn max_pool_picks_window_max() {
        let out = max_pool2d(&input4(), 2, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_averages_window() {
        let out = avg_pool2d(&input4(), 2, 2).unwrap();
        assert_eq!(out.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn overlapping_stride() {
        let out = max_pool2d(&input4(), 2, 1).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 3, 3]);
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 5.0);
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(max_pool2d(&input4(), 0, 1).is_err());
        assert!(max_pool2d(&input4(), 2, 0).is_err());
        assert!(max_pool2d(&input4(), 5, 1).is_err());
        let bad = Tensor::zeros(Shape::matrix(4, 4));
        assert!(max_pool2d(&bad, 2, 2).is_err());
    }

    #[test]
    fn multi_channel_pools_independently() {
        let t = Tensor::from_vec(
            Shape::nchw(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0],
        )
        .unwrap();
        let out = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(out.as_slice(), &[4.0, 40.0]);
    }
}
