//! Fully-connected layer.

use crate::{Result, Tensor, TensorError};

/// Applies `y = W·x + b` where `x` is rank-1 of length `in_f`, `W` is
/// `[out_f, in_f]`, and `b` (optional) is rank-1 of length `out_f`.
///
/// Zero weights are skipped, so pruned rows cost proportionally less.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// when operand shapes disagree.
pub fn linear(input: &Tensor, weights: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    if input.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: input.shape().rank(),
        });
    }
    let out_f = weights_out_features(input.len(), weights, bias)?;
    let mut out = Tensor::zeros(crate::Shape::vector(out_f));
    linear_into(input.as_slice(), weights, bias, &mut out)?;
    Ok(out)
}

/// Validates `weights`/`bias` against an `in_f`-length input and returns
/// the output feature count.
fn weights_out_features(in_f: usize, weights: &Tensor, bias: Option<&Tensor>) -> Result<usize> {
    if weights.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: weights.shape().rank(),
        });
    }
    let (out_f, w_in) = (weights.shape().dim(0), weights.shape().dim(1));
    if w_in != in_f {
        return Err(TensorError::ShapeMismatch {
            left: weights.shape().dims().to_vec(),
            right: vec![out_f, in_f],
        });
    }
    if let Some(b) = bias {
        if b.len() != out_f {
            return Err(TensorError::ShapeMismatch {
                left: b.shape().dims().to_vec(),
                right: vec![out_f],
            });
        }
    }
    Ok(out_f)
}

/// [`linear`] over a flat input slice into a caller-provided rank-1
/// output tensor — the zero-allocation steady-state path. Taking the
/// input as a slice lets DAG executors feed flattened NCHW activations
/// without materializing an intermediate rank-1 tensor.
///
/// # Errors
///
/// All [`linear`] shape error conditions, plus
/// [`TensorError::ShapeMismatch`] when `out` is not rank-1 of length
/// `out_f`.
pub fn linear_into(
    input: &[f32],
    weights: &Tensor,
    bias: Option<&Tensor>,
    out: &mut Tensor,
) -> Result<()> {
    let in_f = input.len();
    let out_f = weights_out_features(in_f, weights, bias)?;
    if out.shape().rank() != 1 || out.len() != out_f {
        return Err(TensorError::ShapeMismatch {
            left: vec![out_f],
            right: out.shape().dims().to_vec(),
        });
    }
    let w = weights.as_slice();
    for (o, out_v) in out.as_mut_slice().iter_mut().enumerate() {
        let row = &w[o * in_f..(o + 1) * in_f];
        let mut acc = 0.0;
        for (wv, xv) in row.iter().zip(input) {
            if *wv != 0.0 {
                acc += wv * xv;
            }
        }
        *out_v = acc + bias.map_or(0.0, |b| b.as_slice()[o]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn computes_affine_map() {
        let x = Tensor::from_vec(Shape::vector(2), vec![1.0, 2.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(3), vec![10.0, 20.0, 30.0]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_slice(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn works_without_bias() {
        let x = Tensor::from_vec(Shape::vector(2), vec![3.0, 4.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]).unwrap();
        assert_eq!(linear(&x, &w, None).unwrap().as_slice(), &[7.0]);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let x = Tensor::zeros(Shape::vector(3));
        let w = Tensor::zeros(Shape::matrix(2, 2));
        assert!(linear(&x, &w, None).is_err());
        let m = Tensor::zeros(Shape::matrix(2, 2));
        assert!(linear(&m, &w, None).is_err());
        let x2 = Tensor::zeros(Shape::vector(2));
        let bad_b = Tensor::zeros(Shape::vector(3));
        assert!(linear(&x2, &w, Some(&bad_b)).is_err());
    }

    #[test]
    fn into_variant_matches_and_checks_shape() {
        let x = Tensor::from_vec(Shape::vector(2), vec![1.0, 2.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(3), vec![10.0, 20.0, 30.0]).unwrap();
        let fresh = linear(&x, &w, Some(&b)).unwrap();
        let mut reused = Tensor::full(Shape::vector(3), -4.0);
        linear_into(x.as_slice(), &w, Some(&b), &mut reused).unwrap();
        assert_eq!(fresh.as_slice(), reused.as_slice());
        let mut bad = Tensor::zeros(Shape::vector(4));
        assert!(linear_into(x.as_slice(), &w, Some(&b), &mut bad).is_err());
    }

    #[test]
    fn zero_rows_yield_zero_outputs() {
        let x = Tensor::from_vec(Shape::vector(2), vec![5.0, 6.0]).unwrap();
        let w = Tensor::zeros(Shape::matrix(2, 2));
        assert_eq!(linear(&x, &w, None).unwrap().as_slice(), &[0.0, 0.0]);
    }
}
