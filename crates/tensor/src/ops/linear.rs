//! Fully-connected layer.

use crate::{Result, Tensor, TensorError};

/// Applies `y = W·x + b` where `x` is rank-1 of length `in_f`, `W` is
/// `[out_f, in_f]`, and `b` (optional) is rank-1 of length `out_f`.
///
/// Zero weights are skipped, so pruned rows cost proportionally less.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// when operand shapes disagree.
pub fn linear(input: &Tensor, weights: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    if input.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: input.shape().rank(),
        });
    }
    if weights.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: weights.shape().rank(),
        });
    }
    let in_f = input.len();
    let (out_f, w_in) = (weights.shape().dim(0), weights.shape().dim(1));
    if w_in != in_f {
        return Err(TensorError::ShapeMismatch {
            left: weights.shape().dims().to_vec(),
            right: vec![out_f, in_f],
        });
    }
    if let Some(b) = bias {
        if b.len() != out_f {
            return Err(TensorError::ShapeMismatch {
                left: b.shape().dims().to_vec(),
                right: vec![out_f],
            });
        }
    }
    let x = input.as_slice();
    let w = weights.as_slice();
    let mut out = vec![0.0f32; out_f];
    for (o, out_v) in out.iter_mut().enumerate() {
        let row = &w[o * in_f..(o + 1) * in_f];
        let mut acc = 0.0;
        for (wv, xv) in row.iter().zip(x) {
            if *wv != 0.0 {
                acc += wv * xv;
            }
        }
        *out_v = acc + bias.map_or(0.0, |b| b.as_slice()[o]);
    }
    Tensor::from_vec(crate::Shape::vector(out_f), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn computes_affine_map() {
        let x = Tensor::from_vec(Shape::vector(2), vec![1.0, 2.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(3), vec![10.0, 20.0, 30.0]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_slice(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn works_without_bias() {
        let x = Tensor::from_vec(Shape::vector(2), vec![3.0, 4.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]).unwrap();
        assert_eq!(linear(&x, &w, None).unwrap().as_slice(), &[7.0]);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let x = Tensor::zeros(Shape::vector(3));
        let w = Tensor::zeros(Shape::matrix(2, 2));
        assert!(linear(&x, &w, None).is_err());
        let m = Tensor::zeros(Shape::matrix(2, 2));
        assert!(linear(&m, &w, None).is_err());
        let x2 = Tensor::zeros(Shape::vector(2));
        let bad_b = Tensor::zeros(Shape::vector(3));
        assert!(linear(&x2, &w, Some(&bad_b)).is_err());
    }

    #[test]
    fn zero_rows_yield_zero_outputs() {
        let x = Tensor::from_vec(Shape::vector(2), vec![5.0, 6.0]).unwrap();
        let w = Tensor::zeros(Shape::matrix(2, 2));
        assert_eq!(linear(&x, &w, None).unwrap().as_slice(), &[0.0, 0.0]);
    }
}
