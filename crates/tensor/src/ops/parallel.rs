//! Process-wide kernel parallelism configuration.
//!
//! Kernels are single-threaded by default so determinism tests and
//! benchmarks measure the serial arithmetic. The streaming runtime (or a
//! caller that wants intra-op parallelism) opts in by raising the thread
//! count; kernels that honour it split work into disjoint output regions
//! with unchanged per-element arithmetic, so results stay bit-identical
//! at any setting.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Global switch for intra-kernel worker threads.
#[derive(Debug, Clone, Copy)]
pub struct TensorParallel;

impl TensorParallel {
    /// Sets the worker-thread count used by parallel-capable kernels.
    /// `0` is treated as `1` (serial).
    pub fn set_threads(n: usize) {
        THREADS.store(n.max(1), Ordering::Relaxed);
    }

    /// The configured worker-thread count (default 1: serial).
    pub fn threads() -> usize {
        THREADS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_and_zero_clamps() {
        // Note: global state — keep this the only test mutating it in this
        // crate's unit suite (integration tests get their own process).
        assert_eq!(TensorParallel::threads(), 1);
        TensorParallel::set_threads(0);
        assert_eq!(TensorParallel::threads(), 1);
        TensorParallel::set_threads(4);
        assert_eq!(TensorParallel::threads(), 4);
        TensorParallel::set_threads(1);
    }
}
