//! Process-wide kernel parallelism: configuration and the persistent
//! worker pool.
//!
//! Kernels are single-threaded by default so determinism tests and
//! benchmarks measure the serial arithmetic. The streaming runtime (or a
//! caller that wants intra-op parallelism) opts in by raising the thread
//! count; kernels that honour it split work into disjoint output regions
//! with unchanged per-element arithmetic, so results stay bit-identical
//! at any setting.
//!
//! Two execution modes back [`parallel_for_chunks`]:
//!
//! * [`ExecMode::Pool`] (default) — a process-wide pool of parked worker
//!   threads and a chunked work queue. Submitting a kernel wakes the
//!   workers, every participant (including the submitting thread) claims
//!   chunk indices from a shared counter, and the submitter blocks until
//!   all chunks have completed. No OS threads are created in steady
//!   state.
//! * [`ExecMode::SpawnPerCall`] — the historical behaviour: a fresh
//!   `std::thread::scope` spawn of `threads` workers per kernel call.
//!   Kept selectable so benchmarks can measure the pool against the
//!   spawn-per-call baseline honestly.
//!
//! Chunks are claimed dynamically, so which thread runs a chunk is
//! nondeterministic — but every chunk writes a disjoint output region in
//! unchanged arithmetic order, so results are bit-identical across modes
//! and thread counts.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static THREADS: AtomicUsize = AtomicUsize::new(1);
static MODE: AtomicU8 = AtomicU8::new(ExecMode::Pool as u8);

/// `1` while some thread is fanned out on the pool. Concurrent submitters
/// (pipeline stage threads racing each other) would otherwise fight over
/// the same parked helpers — condvar wake churn and queue-lock contention
/// with no extra cores to show for it — so the loser runs its chunks
/// inline instead (see `run_on_pool`).
static ACTIVE_SUBMITTER: AtomicUsize = AtomicUsize::new(0);

/// Hard cap on persistent pool workers: thread counts above this still
/// execute correctly (chunk claiming just has fewer claimants), without
/// letting a stress test park hundreds of idle OS threads.
const MAX_POOL_WORKERS: usize = 15;

/// How kernels distribute chunk work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ExecMode {
    /// Persistent parked worker pool (default): no thread spawns after
    /// the pool has grown to the configured size.
    Pool = 0,
    /// Spawn a scoped thread per worker on every kernel call — the
    /// pre-pool baseline, kept for benchmark comparisons.
    SpawnPerCall = 1,
}

/// Global switch for intra-kernel worker threads.
#[derive(Debug, Clone, Copy)]
pub struct TensorParallel;

impl TensorParallel {
    /// Sets the worker-thread count used by parallel-capable kernels.
    /// `0` is treated as `1` (serial).
    pub fn set_threads(n: usize) {
        THREADS.store(n.max(1), Ordering::Relaxed);
    }

    /// The configured worker-thread count (default 1: serial).
    pub fn threads() -> usize {
        THREADS.load(Ordering::Relaxed)
    }

    /// Selects how multi-threaded kernels execute (default [`ExecMode::Pool`]).
    pub fn set_exec_mode(mode: ExecMode) {
        MODE.store(mode as u8, Ordering::Relaxed);
    }

    /// The configured execution mode.
    pub fn exec_mode() -> ExecMode {
        if MODE.load(Ordering::Relaxed) == ExecMode::SpawnPerCall as u8 {
            ExecMode::SpawnPerCall
        } else {
            ExecMode::Pool
        }
    }
}

/// Typed panic payload re-raised on the submitting thread when a pool
/// chunk panics. Workers catch the original unwind (they must survive to
/// serve later jobs), so the payload that crosses the completion barrier
/// is this struct — callers that `catch_unwind` around a kernel can
/// downcast it to learn which chunk failed and why, instead of matching
/// on an opaque string.
#[derive(Debug)]
pub struct ChunkPanic {
    /// Index of the first chunk observed to panic (claim order is
    /// nondeterministic, so "first observed", not "lowest index").
    pub chunk: usize,
    /// Stringified payload of that chunk's original panic.
    pub message: String,
}

impl std::fmt::Display for ChunkPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tensor pool chunk {} panicked: {}",
            self.chunk, self.message
        )
    }
}

/// A raw-pointer wrapper that lets chunk closures derive disjoint `&mut`
/// slices of one output buffer from worker threads. The caller guarantees
/// disjointness (each chunk index maps to its own region).
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

// Manual impls: a derive would bound on `T: Copy`, but the pointee type
// is irrelevant to copying the pointer itself.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: `SendPtr` is only used to hand a base pointer to chunk tasks
// that write disjoint regions while the submitting call frame keeps the
// underlying buffer alive and blocked from other access.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

/// One submitted kernel: an erased task closure plus chunk-claim and
/// completion counters.
struct Job {
    /// Borrowed task, lifetime-erased. SAFETY: the submitter blocks in
    /// `run_on_pool` until `pending` hits zero, so the borrow outlives
    /// every dereference.
    task: *const (dyn Fn(usize) + Sync),
    total: usize,
    next: AtomicUsize,
    pending: AtomicUsize,
    /// First observed chunk panic `(chunk index, stringified payload)`,
    /// re-raised as a typed [`ChunkPanic`] on the submitting thread once
    /// the completion barrier has passed.
    panic_slot: Mutex<Option<(usize, String)>>,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// call frame (which owns the pointee) is blocked waiting for completion.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Pool {
    state: Mutex<PoolState>,
    /// Signals parked workers that the queue is non-empty.
    work_cv: Condvar,
    /// Signals submitters that some job's `pending` reached zero.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

struct PoolState {
    queue: VecDeque<Arc<Job>>,
    /// Workers spawned so far (monotone; workers never exit).
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
        }),
        work_cv: Condvar::new(),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
    })
}

/// Claims and runs chunks of `job` until the claim counter is exhausted.
/// Panics inside the task are caught (the worker must survive) and
/// re-raised on the submitting thread.
fn run_chunks(p: &Pool, job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.total {
            return;
        }
        // SAFETY: see `Job::task` — the submitter keeps the closure alive
        // until `pending` reaches zero, which cannot happen before this
        // chunk's decrement below.
        let task = unsafe { &*job.task };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            let mut slot = job.panic_slot.lock().unwrap();
            if slot.is_none() {
                *slot = Some((i, payload_message(payload.as_ref())));
            }
        }
        // Release pairs with the submitter's Acquire load: chunk writes
        // become visible once it observes the final decrement (RMW
        // release sequences cover every earlier decrement too).
        if job.pending.fetch_sub(1, Ordering::Release) == 1 {
            drop(p.done_lock.lock().unwrap());
            p.done_cv.notify_all();
        }
    }
}

fn worker_loop(p: &'static Pool) {
    loop {
        let job = {
            let mut st = p.state.lock().unwrap();
            loop {
                // Drop fully-claimed jobs; stragglers keep their own Arc.
                while let Some(front) = st.queue.front() {
                    if front.next.load(Ordering::Relaxed) >= front.total {
                        st.queue.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(front) = st.queue.front() {
                    break front.clone();
                }
                st = p.work_cv.wait(st).unwrap();
            }
        };
        run_chunks(p, &job);
    }
}

/// Runs `task(0..total)` on the persistent pool, blocking until every
/// chunk has completed. The submitting thread participates in chunk
/// claiming, so progress never depends on pool workers being scheduled.
fn run_on_pool(total: usize, task: &(dyn Fn(usize) + Sync)) {
    // Clamp helpers to the machine: a pool never oversubscribes, so a
    // thread count above the core count degenerates to the serial loop
    // instead of paying wake/context-switch churn for no parallelism.
    // (Spawn-per-call mode deliberately keeps the unclamped historical
    // behaviour.) Results are bit-identical either way — chunks are
    // self-contained — so this only moves overhead, never values.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let helpers = TensorParallel::threads()
        .min(hw)
        .saturating_sub(1)
        .min(MAX_POOL_WORKERS);
    if helpers == 0 {
        run_inline(total, task);
        return;
    }
    // Single-submitter guard: when another thread already has a job fanned
    // out, this submitter runs its chunks inline rather than queueing.
    // Chunks are self-contained (disjoint output regions, unchanged
    // arithmetic order), so the result is bit-identical — this only trades
    // away wake/lock churn that was costing more than the parallelism it
    // bought (the t2 e2e regression in BENCH_streaming.json).
    if ACTIVE_SUBMITTER
        .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        run_inline(total, task);
        return;
    }
    // Releases the slot even when a chunk panic propagates below.
    struct SubmitterSlot;
    impl Drop for SubmitterSlot {
        fn drop(&mut self) {
            ACTIVE_SUBMITTER.store(0, Ordering::Release);
        }
    }
    let _slot = SubmitterSlot;
    let p = pool();
    // SAFETY: lifetime erasure only — `task` outlives this frame, and
    // this frame blocks until all chunk executions are done.
    let task: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<_, &'static (dyn Fn(usize) + Sync)>(task) };
    let job = Arc::new(Job {
        task,
        total,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(total),
        panic_slot: Mutex::new(None),
    });
    {
        let mut st = p.state.lock().unwrap();
        let target = helpers;
        while st.workers < target {
            st.workers += 1;
            std::thread::Builder::new()
                .name("upaq-tensor-pool".into())
                .spawn(move || worker_loop(p))
                .expect("spawn tensor pool worker");
        }
        st.queue.push_back(job.clone());
    }
    p.work_cv.notify_all();
    run_chunks(p, &job);
    let mut guard = p.done_lock.lock().unwrap();
    while job.pending.load(Ordering::Acquire) != 0 {
        guard = p.done_cv.wait(guard).unwrap();
    }
    drop(guard);
    let stored = job.panic_slot.lock().unwrap().take();
    if let Some((chunk, message)) = stored {
        resume_unwind(Box::new(ChunkPanic { chunk, message }));
    }
}

/// Serial fallback for Pool mode (no helpers available, or another
/// submitter already has the pool fanned out). Mirrors pool semantics
/// exactly: every chunk is attempted, and the first observed panic is
/// re-raised afterwards as a typed [`ChunkPanic`] — so callers see one
/// contract for Pool mode regardless of core count or contention.
fn run_inline(total: usize, task: &(dyn Fn(usize) + Sync)) {
    let mut first: Option<(usize, String)> = None;
    for i in 0..total {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            if first.is_none() {
                first = Some((i, payload_message(payload.as_ref())));
            }
        }
    }
    if let Some((chunk, message)) = first {
        resume_unwind(Box::new(ChunkPanic { chunk, message }));
    }
}

/// Renders a caught panic payload for the [`ChunkPanic`] re-raise.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(0)`, `f(1)`, …, `f(total - 1)`, distributing chunk indices
/// over worker threads when [`TensorParallel::threads`] is above one.
///
/// Chunk-to-thread assignment is dynamic, so callers must make each chunk
/// write a disjoint output region in self-contained arithmetic order —
/// then results are bit-identical to the serial loop at any thread count
/// and in either [`ExecMode`].
///
/// Panics raised by `f` propagate to the caller in both modes. In
/// [`ExecMode::Pool`] the payload crossing the completion barrier is a
/// typed [`ChunkPanic`] (first observed failing chunk + original
/// message); in [`ExecMode::SpawnPerCall`] the scoped join re-raises the
/// original payload unchanged.
pub fn parallel_for_chunks<F: Fn(usize) + Sync>(total: usize, f: F) {
    let threads = TensorParallel::threads().min(total);
    if threads <= 1 {
        for i in 0..total {
            f(i);
        }
        return;
    }
    match TensorParallel::exec_mode() {
        ExecMode::Pool => run_on_pool(total, &f),
        ExecMode::SpawnPerCall => {
            // The pre-pool baseline: `threads` scoped spawns per call.
            let next = AtomicUsize::new(0);
            let claim = |next: &AtomicUsize| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                f(i);
            };
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| claim(&next));
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_and_zero_clamps() {
        // Note: global state — keep this the only test mutating it in this
        // crate's unit suite (integration tests get their own process).
        assert_eq!(TensorParallel::threads(), 1);
        TensorParallel::set_threads(0);
        assert_eq!(TensorParallel::threads(), 1);
        TensorParallel::set_threads(4);
        assert_eq!(TensorParallel::threads(), 4);
        TensorParallel::set_threads(1);
        assert_eq!(TensorParallel::exec_mode(), ExecMode::Pool);
    }

    #[test]
    fn serial_chunks_run_in_order() {
        // threads = 1 (the default) takes the plain serial path.
        let seen = Mutex::new(Vec::new());
        parallel_for_chunks(4, |i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        parallel_for_chunks(0, |_| panic!("must not run"));
    }
}
