use crate::{Result, Shape, TensorError};
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is deliberately simple: a shape plus a flat `Vec<f32>`. All the
/// heavy lifting (convolutions, pooling, …) lives in [`crate::ops`]; this
/// type provides construction, indexing, elementwise arithmetic, reductions
/// and reshaping.
///
/// ```
/// use upaq_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), upaq_tensor::TensorError> {
/// let t = Tensor::zeros(Shape::matrix(2, 3));
/// assert_eq!(t.shape().volume(), 6);
/// assert_eq!(t.get(&[1, 2])?, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; volume],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![value; volume],
        }
    }

    /// Creates a tensor from a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// `shape.volume()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every linear offset.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let data = (0..shape.volume()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(shape: Shape, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let dist = rand::distributions::Uniform::new(lo, hi);
        let data = (0..shape.volume()).map(|_| dist.sample(rng)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary operation against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Population variance of all elements (0 for an empty tensor).
    ///
    /// This is the `var(x)` used by the SQNR computation in the paper's
    /// Algorithm 6.
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / self.data.len() as f32
    }

    /// Minimum element (`+∞` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-∞` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Maximum absolute value — the `α_x` of the paper's Algorithm 6.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Number of exactly-zero elements.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Number of non-zero elements — `W_n` in the paper's computational-cost
    /// model (Eq. 1).
    pub fn count_nonzero(&self) -> usize {
        self.len() - self.count_zeros()
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count_zeros() as f32 / self.data.len() as f32
        }
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Flattens to a rank-1 tensor. Used by the 1×1 kernel transformation
    /// (paper Algorithm 5, line 1).
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::vector(self.data.len()),
            data: self.data.clone(),
        }
    }

    /// Matrix multiplication for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2
    /// and [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        if other.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.shape.rank(),
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue; // sparsity-aware inner loop skip
                }
                let row = &other.data[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        Ok(Tensor {
            shape: Shape::matrix(m, n),
            data: out,
        })
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::matrix(2, 2));
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full(Shape::matrix(2, 2), 3.0);
        assert_eq!(f.sum(), 12.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(Shape::vector(3), vec![1.0, 2.0]).is_err());
        assert!(Tensor::from_vec(Shape::vector(2), vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::new(vec![2, 3]));
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(Shape::vector(3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(3), vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(Shape::vector(3));
        let b = Tensor::zeros(Shape::vector(4));
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(Shape::vector(4), vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.abs_max(), 4.0);
        assert!(approx_eq(t.variance(), 7.25, 1e-6));
    }

    #[test]
    fn sparsity_counts() {
        let t = Tensor::from_vec(Shape::vector(4), vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(t.count_zeros(), 2);
        assert_eq!(t.count_nonzero(), 2);
        assert_eq!(t.sparsity(), 0.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::matrix(2, 3), (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(Shape::matrix(3, 2)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(Shape::vector(5)).is_err());
    }

    #[test]
    fn flatten_rank() {
        let t = Tensor::zeros(Shape::new(vec![2, 2, 2]));
        assert_eq!(t.flatten().shape().rank(), 1);
        assert_eq!(t.flatten().len(), 8);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(Shape::matrix(2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Tensor::from_vec(Shape::matrix(2, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b =
            Tensor::from_vec(Shape::matrix(3, 2), vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::matrix(2, 3));
        let b = Tensor::zeros(Shape::matrix(2, 3));
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(Shape::vector(3));
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::uniform(Shape::vector(1000), -0.5, 0.5, &mut rng);
        assert!(t.min() >= -0.5 && t.max() < 0.5);
    }

    #[test]
    fn display_preview() {
        let t = Tensor::zeros(Shape::vector(20));
        let s = t.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(Shape::vector(2), vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(2), vec![1.5, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
    }
}
