//! Symmetric integer quantization.
//!
//! Implements the numeric core of the paper's `mp_quantizer` (Algorithm 6):
//! per-tensor symmetric quantization centred on zero, plus the
//! signal-to-quantization-noise ratio (SQNR) used to measure quantization
//! error. The UPAQ crate drives this through its mixed-precision search; the
//! baseline frameworks reuse the same primitives with their own policies.

use crate::{Result, Shape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Inclusive range of bitwidths this crate supports.
///
/// The paper sweeps quantization bits from 4 to 16; we additionally allow 2
/// and 3 bits so ablations can explore more aggressive settings.
pub const MIN_BITS: u8 = 2;
/// See [`MIN_BITS`].
pub const MAX_BITS: u8 = 16;

/// A tensor stored as symmetric fixed-point integers plus a scale.
///
/// The real value of element `i` is `values[i] as f32 * scale`. Symmetric
/// quantization maps `[-α, α]` onto `[-(2^(b-1)-1), 2^(b-1)-1]`, so zero is
/// always exactly representable — important for pruned kernels, where most
/// elements are exactly zero.
///
/// ```
/// use upaq_tensor::{Shape, Tensor};
/// use upaq_tensor::quant::QuantizedTensor;
///
/// # fn main() -> Result<(), upaq_tensor::TensorError> {
/// let t = Tensor::from_vec(Shape::vector(3), vec![-1.0, 0.0, 1.0])?;
/// let q = QuantizedTensor::quantize(&t, 8)?;
/// let back = q.dequantize();
/// assert!(t.max_abs_diff(&back)? < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    shape: Shape,
    values: Vec<i32>,
    scale: f32,
    bits: u8,
}

impl QuantizedTensor {
    /// Quantizes a tensor to `bits` bits with a symmetric per-tensor scale.
    ///
    /// This is lines 1–7 of the paper's Algorithm 6:
    /// `α_x = max(|min x|, |max x|)`, `scale = α_x / (2^(b-1) - 1)`,
    /// `x_q = clip(round(x / scale))`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnsupportedBitwidth`] for bitwidths outside
    /// [`MIN_BITS`]`..=`[`MAX_BITS`].
    pub fn quantize(tensor: &Tensor, bits: u8) -> Result<Self> {
        if !(MIN_BITS..=MAX_BITS).contains(&bits) {
            return Err(TensorError::UnsupportedBitwidth(bits));
        }
        let max_value = ((1i32 << (bits - 1)) - 1) as f32;
        let alpha = tensor.abs_max();
        // An all-zero tensor quantizes to all-zero with unit scale.
        let scale = if alpha == 0.0 { 1.0 } else { alpha / max_value };
        let min_q = -(max_value as i32);
        let max_q = max_value as i32;
        let values = tensor
            .as_slice()
            .iter()
            .map(|&x| ((x / scale).round() as i32).clamp(min_q, max_q))
            .collect();
        Ok(QuantizedTensor {
            shape: tensor.shape().clone(),
            values,
            scale,
            bits,
        })
    }

    /// Reconstructs the floating-point tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_fn(self.shape.clone(), |i| self.values[i] as f32 * self.scale)
    }

    /// The quantization bitwidth.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The symmetric scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Read-only view of the integer codes.
    pub fn codes(&self) -> &[i32] {
        &self.values
    }

    /// Storage footprint in bits, ignoring the (constant) scale.
    pub fn storage_bits(&self) -> usize {
        self.values.len() * self.bits as usize
    }

    /// Storage footprint counting only non-zero codes — what a
    /// sparsity-exploiting runtime (TensorRT-style) actually stores.
    pub fn nonzero_storage_bits(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0).count() * self.bits as usize
    }
}

/// Signal-to-quantization-noise ratio between an original tensor and its
/// quantized reconstruction, as a plain power ratio (not dB):
/// `sqnr = var(x) / var(x - x̂)` (paper Algorithm 6, line 8).
///
/// Returns `f32::INFINITY` when the reconstruction is exact (zero noise
/// variance), matching the intuition that lossless quantization has
/// unbounded SQNR.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn sqnr(original: &Tensor, reconstructed: &Tensor) -> Result<f32> {
    let noise = original.sub(reconstructed)?;
    let noise_var = noise.variance();
    let signal_var = original.variance();
    if noise_var == 0.0 {
        return Ok(f32::INFINITY);
    }
    Ok(signal_var / noise_var)
}

/// Converts a plain SQNR power ratio to decibels.
///
/// ```
/// let db = upaq_tensor::quant::sqnr_db(100.0);
/// assert!((db - 20.0).abs() < 1e-5);
/// ```
pub fn sqnr_db(ratio: f32) -> f32 {
    if ratio <= 0.0 {
        f32::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Quantizes then immediately dequantizes (`fake quantization`), returning
/// the reconstructed tensor and its SQNR against the input.
///
/// This is the full Algorithm 6 in one call — the form every compression
/// algorithm in the workspace actually uses.
///
/// # Errors
///
/// Propagates [`TensorError::UnsupportedBitwidth`] from quantization.
pub fn fake_quantize(tensor: &Tensor, bits: u8) -> Result<(Tensor, f32)> {
    let q = QuantizedTensor::quantize(tensor, bits)?;
    let recon = q.dequantize();
    let ratio = sqnr(tensor, &recon)?;
    Ok((recon, ratio))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_tensor(seed: u64, n: usize) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::uniform(Shape::vector(n), -1.0, 1.0, &mut rng)
    }

    #[test]
    fn rejects_bad_bitwidths() {
        let t = sample_tensor(0, 16);
        assert!(QuantizedTensor::quantize(&t, 1).is_err());
        assert!(QuantizedTensor::quantize(&t, 17).is_err());
        assert!(QuantizedTensor::quantize(&t, 8).is_ok());
    }

    #[test]
    fn zero_tensor_quantizes_exactly() {
        let t = Tensor::zeros(Shape::vector(8));
        let q = QuantizedTensor::quantize(&t, 4).unwrap();
        assert_eq!(q.dequantize(), t);
        assert_eq!(q.nonzero_storage_bits(), 0);
    }

    #[test]
    fn reconstruction_error_bounded_by_half_scale() {
        let t = sample_tensor(1, 256);
        for bits in [4u8, 8, 16] {
            let q = QuantizedTensor::quantize(&t, bits).unwrap();
            let recon = q.dequantize();
            let err = t.max_abs_diff(&recon).unwrap();
            assert!(
                err <= q.scale() * 0.5 + 1e-6,
                "bits={bits}: err {err} > half scale {}",
                q.scale() * 0.5
            );
        }
    }

    #[test]
    fn more_bits_means_higher_sqnr() {
        let t = sample_tensor(2, 512);
        let (_, s4) = fake_quantize(&t, 4).unwrap();
        let (_, s8) = fake_quantize(&t, 8).unwrap();
        let (_, s16) = fake_quantize(&t, 16).unwrap();
        assert!(s4 < s8, "4-bit SQNR {s4} should be below 8-bit {s8}");
        assert!(s8 < s16, "8-bit SQNR {s8} should be below 16-bit {s16}");
    }

    #[test]
    fn sqnr_rule_of_thumb_6db_per_bit() {
        // Uniform data: SQNR grows ≈6.02 dB per extra bit. Allow slack.
        let t = sample_tensor(3, 8192);
        let (_, s6) = fake_quantize(&t, 6).unwrap();
        let (_, s10) = fake_quantize(&t, 10).unwrap();
        let gain_db = sqnr_db(s10) - sqnr_db(s6);
        assert!(
            (gain_db - 24.0).abs() < 4.0,
            "gain {gain_db} dB far from 24 dB"
        );
    }

    #[test]
    fn zero_stays_zero() {
        // Symmetric quantization must keep pruned (zero) weights exactly zero.
        let t = Tensor::from_vec(Shape::vector(4), vec![0.0, 0.9, 0.0, -0.7]).unwrap();
        let q = QuantizedTensor::quantize(&t, 4).unwrap();
        let recon = q.dequantize();
        assert_eq!(recon.as_slice()[0], 0.0);
        assert_eq!(recon.as_slice()[2], 0.0);
    }

    #[test]
    fn exact_reconstruction_gives_infinite_sqnr() {
        let t = Tensor::from_vec(Shape::vector(2), vec![1.0, -1.0]).unwrap();
        assert_eq!(sqnr(&t, &t).unwrap(), f32::INFINITY);
    }

    #[test]
    fn storage_bits_account_for_bitwidth() {
        let t = sample_tensor(4, 100);
        let q = QuantizedTensor::quantize(&t, 8).unwrap();
        assert_eq!(q.storage_bits(), 800);
        assert!(q.nonzero_storage_bits() <= q.storage_bits());
    }

    #[test]
    fn codes_respect_range() {
        let t = sample_tensor(5, 1000);
        let q = QuantizedTensor::quantize(&t, 4).unwrap();
        assert!(q.codes().iter().all(|&c| (-7..=7).contains(&c)));
    }

    #[test]
    fn sqnr_db_conversion() {
        assert!(sqnr_db(0.0).is_infinite());
        assert!((sqnr_db(1000.0) - 30.0).abs() < 1e-4);
    }
}
