//! Kernel masks and sparse kernel views for semi-structured pruning.
//!
//! Pattern-based pruning (paper §III-A, Fig. 2(d)) keeps a fixed set of
//! positions inside each k×k kernel and zeroes the rest. [`KernelMask`]
//! represents that position set; applying it to a weight tensor produces the
//! pruned kernel, and [`SparseKernel`] stores only the surviving weights in a
//! coordinate format the execution engine can stream.

use crate::{Result, Shape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A boolean keep/drop mask over a `d × d` kernel.
///
/// `true` entries are *kept* (non-zero positions of the pattern).
///
/// ```
/// use upaq_tensor::sparse::KernelMask;
///
/// let mask = KernelMask::from_positions(3, &[(0, 0), (1, 1), (2, 2)]);
/// assert_eq!(mask.kept(), 3);
/// assert!(mask.is_kept(1, 1));
/// assert!(!mask.is_kept(0, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelMask {
    dim: usize,
    keep: Vec<bool>,
}

impl KernelMask {
    /// An all-kept (dense) mask.
    pub fn dense(dim: usize) -> Self {
        KernelMask {
            dim,
            keep: vec![true; dim * dim],
        }
    }

    /// An all-dropped mask (the connectivity-pruning "remove this kernel
    /// entirely" case).
    pub fn empty(dim: usize) -> Self {
        KernelMask {
            dim,
            keep: vec![false; dim * dim],
        }
    }

    /// Builds a mask keeping exactly the listed `(row, col)` positions.
    ///
    /// Out-of-range positions are ignored, mirroring how the paper's pattern
    /// generator clamps pattern length with `min(n, d)`.
    pub fn from_positions(dim: usize, positions: &[(usize, usize)]) -> Self {
        let mut keep = vec![false; dim * dim];
        for &(r, c) in positions {
            if r < dim && c < dim {
                keep[r * dim + c] = true;
            }
        }
        KernelMask { dim, keep }
    }

    /// Kernel side length `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of kept positions.
    pub fn kept(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Fraction of dropped positions, in `[0, 1]`.
    pub fn sparsity(&self) -> f32 {
        if self.keep.is_empty() {
            0.0
        } else {
            1.0 - self.kept() as f32 / self.keep.len() as f32
        }
    }

    /// Whether position `(row, col)` is kept.
    ///
    /// # Panics
    ///
    /// Panics when `row` or `col` is `>= dim`.
    pub fn is_kept(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.dim && col < self.dim,
            "mask position out of range"
        );
        self.keep[row * self.dim + col]
    }

    /// The kept `(row, col)` positions in row-major order.
    pub fn positions(&self) -> Vec<(usize, usize)> {
        (0..self.dim)
            .flat_map(|r| (0..self.dim).map(move |c| (r, c)))
            .filter(|&(r, c)| self.keep[r * self.dim + c])
            .collect()
    }

    /// Applies the mask to a `d × d` kernel tensor, zeroing dropped
    /// positions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the tensor is not a
    /// `d × d` matrix matching the mask.
    pub fn apply(&self, kernel: &Tensor) -> Result<Tensor> {
        if kernel.shape().dims() != [self.dim, self.dim] {
            return Err(TensorError::ShapeMismatch {
                left: kernel.shape().dims().to_vec(),
                right: vec![self.dim, self.dim],
            });
        }
        let mut out = kernel.clone();
        for r in 0..self.dim {
            for c in 0..self.dim {
                if !self.keep[r * self.dim + c] {
                    out.set(&[r, c], 0.0).expect("index in range");
                }
            }
        }
        Ok(out)
    }

    /// Applies the mask to every `d × d` kernel of a 4-D `[out_c, in_c, d, d]`
    /// weight tensor — the "apply the same compression pattern to all kernels
    /// in the leaf node" step of the paper's Algorithm 3.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 weights and
    /// [`TensorError::ShapeMismatch`] when the spatial dims differ from the
    /// mask.
    pub fn apply_to_weights(&self, weights: &Tensor) -> Result<Tensor> {
        let shape = weights.shape();
        if shape.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: shape.rank(),
            });
        }
        if shape.dim(2) != self.dim || shape.dim(3) != self.dim {
            return Err(TensorError::ShapeMismatch {
                left: shape.dims().to_vec(),
                right: vec![shape.dim(0), shape.dim(1), self.dim, self.dim],
            });
        }
        let (oc, ic, kh, kw) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let mut out = weights.clone();
        let data = out.as_mut_slice();
        for o in 0..oc {
            for i in 0..ic {
                let base = ((o * ic) + i) * kh * kw;
                for r in 0..kh {
                    for c in 0..kw {
                        if !self.keep[r * self.dim + c] {
                            data[base + r * kw + c] = 0.0;
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// A kernel stored in coordinate (COO) form: only the non-zero weights and
/// their positions.
///
/// This is what a sparsity-exploiting runtime keeps in memory; the size
/// accounting in the hardware model uses its [`SparseKernel::nnz`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseKernel {
    dim: usize,
    entries: Vec<(u8, u8, f32)>,
}

impl SparseKernel {
    /// Builds a sparse view of a `d × d` kernel, dropping exact zeros.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the kernel is not rank 2 or
    /// [`TensorError::Invalid`] when it is not square or wider than 255.
    pub fn from_dense(kernel: &Tensor) -> Result<Self> {
        if kernel.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: kernel.shape().rank(),
            });
        }
        let dim = kernel.shape().dim(0);
        if kernel.shape().dim(1) != dim {
            return Err(TensorError::Invalid("sparse kernels must be square".into()));
        }
        if dim > u8::MAX as usize {
            return Err(TensorError::Invalid("kernel dimension exceeds 255".into()));
        }
        let mut entries = Vec::new();
        for r in 0..dim {
            for c in 0..dim {
                let v = kernel.get(&[r, c]).expect("index in range");
                if v != 0.0 {
                    entries.push((r as u8, c as u8, v));
                }
            }
        }
        Ok(SparseKernel { dim, entries })
    }

    /// Kernel side length.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) weights.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over `(row, col, weight)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Reconstructs the dense kernel.
    pub fn to_dense(&self) -> Tensor {
        let mut t = Tensor::zeros(Shape::matrix(self.dim, self.dim));
        for &(r, c, v) in &self.entries {
            t.set(&[r as usize, c as usize], v).expect("index in range");
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel3() -> Tensor {
        Tensor::from_vec(
            Shape::matrix(3, 3),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap()
    }

    #[test]
    fn dense_and_empty_masks() {
        assert_eq!(KernelMask::dense(3).kept(), 9);
        assert_eq!(KernelMask::empty(3).kept(), 0);
        assert_eq!(KernelMask::dense(3).sparsity(), 0.0);
        assert_eq!(KernelMask::empty(3).sparsity(), 1.0);
    }

    #[test]
    fn from_positions_ignores_out_of_range() {
        let m = KernelMask::from_positions(3, &[(0, 0), (5, 5), (2, 2)]);
        assert_eq!(m.kept(), 2);
    }

    #[test]
    fn apply_zeroes_dropped() {
        let m = KernelMask::from_positions(3, &[(0, 0), (1, 1), (2, 2)]);
        let pruned = m.apply(&kernel3()).unwrap();
        assert_eq!(pruned.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(pruned.get(&[0, 1]).unwrap(), 0.0);
        assert_eq!(pruned.get(&[2, 2]).unwrap(), 9.0);
        assert_eq!(pruned.count_nonzero(), 3);
    }

    #[test]
    fn apply_rejects_wrong_shape() {
        let m = KernelMask::dense(3);
        let k = Tensor::zeros(Shape::matrix(2, 2));
        assert!(m.apply(&k).is_err());
    }

    #[test]
    fn apply_to_weights_masks_every_kernel() {
        let w = Tensor::full(Shape::nchw(2, 3, 3, 3), 1.0);
        let m = KernelMask::from_positions(3, &[(1, 1)]);
        let pruned = m.apply_to_weights(&w).unwrap();
        assert_eq!(pruned.count_nonzero(), 2 * 3); // one survivor per kernel
    }

    #[test]
    fn apply_to_weights_rejects_bad_rank() {
        let m = KernelMask::dense(3);
        assert!(m
            .apply_to_weights(&Tensor::zeros(Shape::matrix(3, 3)))
            .is_err());
        assert!(m
            .apply_to_weights(&Tensor::zeros(Shape::nchw(1, 1, 2, 2)))
            .is_err());
    }

    #[test]
    fn positions_row_major() {
        let m = KernelMask::from_positions(2, &[(1, 0), (0, 1)]);
        assert_eq!(m.positions(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn sparse_roundtrip() {
        let m = KernelMask::from_positions(3, &[(0, 2), (1, 1), (2, 0)]);
        let pruned = m.apply(&kernel3()).unwrap();
        let sk = SparseKernel::from_dense(&pruned).unwrap();
        assert_eq!(sk.nnz(), 3);
        assert_eq!(sk.to_dense(), pruned);
    }

    #[test]
    fn sparse_rejects_non_square() {
        let k = Tensor::zeros(Shape::matrix(2, 3));
        assert!(SparseKernel::from_dense(&k).is_err());
        assert!(SparseKernel::from_dense(&Tensor::zeros(Shape::vector(4))).is_err());
    }

    #[test]
    fn sparse_iter_matches_entries() {
        let m = KernelMask::from_positions(3, &[(0, 0)]);
        let pruned = m.apply(&kernel3()).unwrap();
        let sk = SparseKernel::from_dense(&pruned).unwrap();
        let entries: Vec<_> = sk.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0)]);
    }
}
