//! Packed sparse convolution weights.
//!
//! The pattern pruner fixes each kernel's zero structure at compression
//! time, yet the direct conv kernels historically re-scanned the dense
//! weight tensor for non-zero taps on **every** invocation. Packing hoists
//! that scan out of the per-frame loop: [`PackedConv`] (and its int-domain
//! twin [`PackedQuantConv`]) stores, per `(out_c, in_c)` kernel, the list
//! of surviving taps `(row, col, value)` in the exact row-major order the
//! dense scan produced — so a kernel consuming the packed form performs
//! bit-identical arithmetic to one scanning the dense tensor, while
//! touching only the non-zero weights.
//!
//! Packing is built once (when a model variant is constructed) and shared
//! immutably afterwards; mutating a layer's weights must invalidate its
//! pack.

use crate::quant::QuantizedTensor;
use crate::{Result, Shape, TensorError};

/// One surviving weight tap: kernel row, kernel column, value.
///
/// Rows/columns are `u16` (alignment makes this free next to the value) —
/// packing rejects kernels over 65535 per spatial axis, far beyond
/// anything representable in memory anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap<V> {
    /// Kernel row.
    pub r: u16,
    /// Kernel column.
    pub c: u16,
    /// Weight value (f32 for dense weights, i64 code for quantized).
    pub v: V,
}

/// Non-zero taps of a rank-4 weight tensor, grouped per `(out_c, in_c)`
/// kernel in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTaps<V> {
    out_c: usize,
    in_c: usize,
    kh: usize,
    kw: usize,
    /// `offsets[oc * in_c + ic] .. offsets[oc * in_c + ic + 1]` indexes
    /// the taps of kernel `(oc, ic)`; length `out_c * in_c + 1`.
    offsets: Vec<usize>,
    taps: Vec<Tap<V>>,
}

impl<V: Copy> PackedTaps<V> {
    fn from_dense<T: Copy>(
        shape: &Shape,
        data: &[T],
        is_zero: impl Fn(T) -> bool,
        to_value: impl Fn(T) -> V,
    ) -> Result<Self> {
        if shape.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: shape.rank(),
            });
        }
        let (out_c, in_c, kh, kw) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        if kh > u16::MAX as usize || kw > u16::MAX as usize {
            return Err(TensorError::Invalid(format!(
                "cannot pack {kh}x{kw} kernels (max 65535 per axis)"
            )));
        }
        let mut offsets = Vec::with_capacity(out_c * in_c + 1);
        let mut taps = Vec::new();
        offsets.push(0);
        for oc in 0..out_c {
            for ic in 0..in_c {
                let kbase = (oc * in_c + ic) * kh * kw;
                for r in 0..kh {
                    for c in 0..kw {
                        let v = data[kbase + r * kw + c];
                        if !is_zero(v) {
                            taps.push(Tap {
                                r: r as u16,
                                c: c as u16,
                                v: to_value(v),
                            });
                        }
                    }
                }
                offsets.push(taps.len());
            }
        }
        Ok(PackedTaps {
            out_c,
            in_c,
            kh,
            kw,
            offsets,
            taps,
        })
    }

    /// Output-channel count of the packed weights.
    pub fn out_c(&self) -> usize {
        self.out_c
    }

    /// Input-channel count of the packed weights.
    pub fn in_c(&self) -> usize {
        self.in_c
    }

    /// Kernel height.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Total surviving (non-zero) taps.
    pub fn nonzeros(&self) -> usize {
        self.taps.len()
    }

    /// The taps of kernel `(oc, ic)`, in the row-major order the dense
    /// scan would visit them.
    pub fn group(&self, oc: usize, ic: usize) -> &[Tap<V>] {
        let g = oc * self.in_c + ic;
        &self.taps[self.offsets[g]..self.offsets[g + 1]]
    }

    /// Whether these packed weights were built from a tensor of `shape`.
    pub fn matches(&self, shape: &Shape) -> bool {
        shape.dims() == [self.out_c, self.in_c, self.kh, self.kw]
    }
}

/// Packed non-zero taps of a dense f32 conv weight tensor.
pub type PackedConv = PackedTaps<f32>;

impl PackedConv {
    /// Packs the non-zero taps of rank-4 weights `[out_c, in_c, kh, kw]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 weights and
    /// [`TensorError::Invalid`] for kernels over 255 per spatial axis.
    pub fn pack(weights: &crate::Tensor) -> Result<PackedConv> {
        PackedTaps::from_dense(weights.shape(), weights.as_slice(), |v| v == 0.0, |v| v)
    }
}

/// Packed non-zero integer codes of a quantized conv weight tensor, with
/// the tensor's scale carried alongside for the single rescale.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedQuantConv {
    taps: PackedTaps<i64>,
    scale: f32,
}

impl PackedQuantConv {
    /// Packs the non-zero codes of quantized rank-4 weights.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PackedConv::pack`].
    pub fn pack(weights: &QuantizedTensor) -> Result<PackedQuantConv> {
        Ok(PackedQuantConv {
            taps: PackedTaps::from_dense(
                weights.shape(),
                weights.codes(),
                |v| v == 0,
                |v| v as i64,
            )?,
            scale: weights.scale(),
        })
    }

    /// The weight-tensor scale captured at pack time.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The underlying packed integer taps.
    pub fn taps(&self) -> &PackedTaps<i64> {
        &self.taps
    }
}

impl std::ops::Deref for PackedQuantConv {
    type Target = PackedTaps<i64>;

    fn deref(&self) -> &PackedTaps<i64> {
        &self.taps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Shape, Tensor};

    #[test]
    fn packs_nonzero_taps_in_row_major_order() {
        // 2 out, 1 in, 2x2 kernels; second kernel fully pruned.
        let w = Tensor::from_vec(
            Shape::nchw(2, 1, 2, 2),
            vec![1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0],
        )
        .unwrap();
        let p = PackedConv::pack(&w).unwrap();
        assert_eq!((p.out_c(), p.in_c(), p.kh(), p.kw()), (2, 1, 2, 2));
        assert_eq!(p.nonzeros(), 2);
        let g = p.group(0, 0);
        assert_eq!(g.len(), 2);
        assert_eq!((g[0].r, g[0].c, g[0].v), (0, 0, 1.0));
        assert_eq!((g[1].r, g[1].c, g[1].v), (1, 1, 2.0));
        assert!(p.group(1, 0).is_empty());
        assert!(p.matches(w.shape()));
        assert!(!p.matches(&Shape::nchw(1, 1, 2, 2)));
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(PackedConv::pack(&Tensor::zeros(Shape::matrix(2, 2))).is_err());
    }

    #[test]
    fn quantized_pack_keeps_codes_and_scale() {
        let w = Tensor::from_vec(Shape::nchw(1, 1, 1, 3), vec![-0.5, 0.0, 0.5]).unwrap();
        let q = QuantizedTensor::quantize(&w, 8).unwrap();
        let p = PackedQuantConv::pack(&q).unwrap();
        assert_eq!(p.scale(), q.scale());
        assert_eq!(p.nonzeros(), 2);
        let g = p.group(0, 0);
        assert_eq!(g[0].v, q.codes()[0] as i64);
        assert_eq!(g[1].v, q.codes()[2] as i64);
    }
}
