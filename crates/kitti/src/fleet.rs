//! Multi-stream fleet scenarios: the synthetic sensor population a
//! fleet-serving layer multiplexes.
//!
//! A [`FleetScenario`] describes *hundreds* of concurrent sensor streams —
//! one per simulated vehicle — with per-stream frame rates, staggered
//! start phases and per-stream deadlines drawn round-robin from a small
//! set of service classes (a tight camera-like 10 Hz class, a nominal
//! LiDAR-like class, a relaxed long-deadline class by default). Phase
//! staggering spreads arrivals inside each emission period so admission is
//! a steady trickle rather than a thundering herd, which is exactly the
//! regime where cross-stream batching has material work to group.
//!
//! Every stream gets its own derived dataset seed, so different streams
//! observe different scenes, while the whole scenario stays a pure
//! function of `(config, seed)` — two fleets built from equal inputs are
//! frame-for-frame identical, the property the cross-stream bit-identity
//! tests rely on.

use crate::dataset::DatasetConfig;
use crate::stream::{FrameStream, SensorData};

/// One service class a stream can belong to: its pacing and deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamClass {
    /// Frame rate, Hz.
    pub rate_hz: f64,
    /// Per-frame deadline from arrival to detections, seconds.
    pub deadline_s: f64,
}

/// Fleet-scenario knobs.
#[derive(Debug, Clone)]
pub struct FleetScenarioConfig {
    /// Number of concurrent streams.
    pub streams: usize,
    /// Frames each stream emits before ending.
    pub frames_per_stream: u64,
    /// Service classes assigned round-robin across streams.
    pub classes: Vec<StreamClass>,
    /// Dataset generation parameters shared by every stream (each stream
    /// derives its own seed, so contents still differ per stream).
    pub dataset: DatasetConfig,
}

impl Default for FleetScenarioConfig {
    fn default() -> Self {
        let mut dataset = DatasetConfig::small();
        // Two scenes per stream keep per-stream dataset synthesis cheap at
        // hundreds of streams; streams cycle their scenes like `bin/stream`.
        dataset.scenes = 2;
        FleetScenarioConfig {
            streams: 128,
            frames_per_stream: 4,
            classes: vec![
                // Tight class: camera-rate arrivals on a firm deadline.
                StreamClass {
                    rate_hz: 30.0,
                    deadline_s: 0.100,
                },
                // Nominal LiDAR class.
                StreamClass {
                    rate_hz: 10.0,
                    deadline_s: 0.150,
                },
                // Relaxed class: low rate, generous deadline — the class an
                // EDF scheduler starves without an aging boost.
                StreamClass {
                    rate_hz: 5.0,
                    deadline_s: 0.400,
                },
            ],
            dataset,
        }
    }
}

/// One stream of the fleet: identity, pacing, deadline and frame budget.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamProfile {
    /// Stream index, `0..streams`.
    pub id: usize,
    /// Dataset seed this stream's frames are generated from.
    pub seed: u64,
    /// Frame rate, Hz.
    pub rate_hz: f64,
    /// Start-phase offset of the first frame, seconds.
    pub phase_s: f64,
    /// Frames this stream emits.
    pub frames: u64,
    /// Per-frame deadline, seconds.
    pub deadline_s: f64,
}

impl StreamProfile {
    /// Scheduled emission time of frame `k`, seconds from scenario start.
    pub fn emit_time_s(&self, k: u64) -> f64 {
        self.phase_s + k as f64 / self.rate_hz
    }
}

/// A deterministic population of sensor streams.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    config: FleetScenarioConfig,
    profiles: Vec<StreamProfile>,
}

impl FleetScenario {
    /// Builds the scenario: streams are assigned classes round-robin and
    /// staggered phases that spread each class's members evenly across one
    /// emission period.
    ///
    /// # Panics
    ///
    /// Panics on zero streams/frames, an empty class list, or a class with
    /// a non-positive rate or deadline — a scenario with no work or no
    /// schedule is a configuration bug worth failing loudly on.
    pub fn build(config: FleetScenarioConfig, seed: u64) -> Self {
        assert!(config.streams > 0, "fleet needs at least one stream");
        assert!(
            config.frames_per_stream > 0,
            "streams need at least one frame"
        );
        assert!(!config.classes.is_empty(), "fleet needs at least one class");
        for class in &config.classes {
            assert!(
                class.rate_hz > 0.0 && class.deadline_s > 0.0,
                "stream classes need positive rates and deadlines"
            );
        }
        let profiles = (0..config.streams)
            .map(|id| {
                let class = config.classes[id % config.classes.len()];
                // Members of one class are spread evenly across the class
                // period; the id-dependent offset keeps distinct streams
                // from colliding on the same instant.
                let cohort = id / config.classes.len();
                let cohorts = config.streams.div_ceil(config.classes.len());
                let phase_s = (cohort as f64 / cohorts as f64) / class.rate_hz;
                StreamProfile {
                    id,
                    // A fixed odd stride decorrelates per-stream datasets
                    // while keeping the mapping reproducible.
                    seed: seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1)),
                    rate_hz: class.rate_hz,
                    phase_s,
                    frames: config.frames_per_stream,
                    deadline_s: class.deadline_s,
                }
            })
            .collect();
        FleetScenario { config, profiles }
    }

    /// The configuration the scenario was built from.
    pub fn config(&self) -> &FleetScenarioConfig {
        &self.config
    }

    /// All stream profiles, in id order.
    pub fn profiles(&self) -> &[StreamProfile] {
        &self.profiles
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the scenario has no streams (never true once built).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Total frames the whole fleet will emit.
    pub fn total_frames(&self) -> u64 {
        self.profiles.iter().map(|p| p.frames).sum()
    }

    /// The frame source for one stream: a [`FrameStream`] over this
    /// stream's own derived dataset seed.
    pub fn stream<T: SensorData>(&self, id: usize) -> FrameStream<T> {
        FrameStream::generate(&self.config.dataset, self.profiles[id].seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lidar::PointCloud;

    fn scenario(streams: usize) -> FleetScenario {
        let config = FleetScenarioConfig {
            streams,
            frames_per_stream: 3,
            ..FleetScenarioConfig::default()
        };
        FleetScenario::build(config, 7)
    }

    #[test]
    fn classes_rotate_and_phases_stagger_within_a_class() {
        let s = scenario(12);
        assert_eq!(s.len(), 12);
        assert_eq!(s.total_frames(), 36);
        let classes = &s.config().classes;
        for p in s.profiles() {
            let class = classes[p.id % classes.len()];
            assert_eq!(p.rate_hz, class.rate_hz);
            assert_eq!(p.deadline_s, class.deadline_s);
            // Phases stay inside one emission period.
            assert!(p.phase_s >= 0.0 && p.phase_s < 1.0 / p.rate_hz);
        }
        // Two same-class streams never share a phase.
        let tight: Vec<&StreamProfile> = s
            .profiles()
            .iter()
            .filter(|p| p.id % classes.len() == 0)
            .collect();
        for pair in tight.windows(2) {
            assert!(pair[0].phase_s != pair[1].phase_s);
        }
    }

    #[test]
    fn emit_times_follow_rate_and_phase() {
        let s = scenario(3);
        let p = &s.profiles()[1];
        assert!((p.emit_time_s(0) - p.phase_s).abs() < 1e-12);
        let dt = p.emit_time_s(5) - p.emit_time_s(4);
        assert!((dt - 1.0 / p.rate_hz).abs() < 1e-12);
    }

    #[test]
    fn scenario_is_deterministic_and_streams_differ() {
        let a = scenario(6);
        let b = scenario(6);
        assert_eq!(a.profiles(), b.profiles());
        for id in 0..a.len() {
            let fa: Vec<_> = a.stream::<PointCloud>(id).take(2).collect();
            let fb: Vec<_> = b.stream::<PointCloud>(id).take(2).collect();
            for (x, y) in fa.iter().zip(&fb) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.data.points(), y.data.points());
            }
        }
        // Distinct streams observe distinct worlds.
        assert_ne!(a.profiles()[0].seed, a.profiles()[1].seed);
        let s0: Vec<_> = a.stream::<PointCloud>(0).take(1).collect();
        let s1: Vec<_> = a.stream::<PointCloud>(1).take(1).collect();
        assert_ne!(s0[0].data.points(), s1[0].data.points());
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panic() {
        FleetScenario::build(
            FleetScenarioConfig {
                streams: 0,
                ..FleetScenarioConfig::default()
            },
            1,
        );
    }
}
