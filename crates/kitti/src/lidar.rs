//! LiDAR point-cloud synthesis.
//!
//! Real LiDAR returns cluster on object surfaces, thin out with range
//! (beam divergence), disappear behind occluders, and carry measurement
//! noise. The synthesizer reproduces those effects so the pillar encoder
//! downstream sees realistically-structured input: detection quality then
//! genuinely depends on how well the (possibly compressed) network reads
//! pillar statistics.

use crate::scene::{Scene, SceneObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One LiDAR return: position plus reflectance intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LidarPoint {
    /// Position `(x, y, z)` in the sensor frame, metres.
    pub position: [f32; 3],
    /// Reflectance in `[0, 1]`.
    pub intensity: f32,
}

/// A synthesized LiDAR sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointCloud {
    points: Vec<LidarPoint>,
}

impl PointCloud {
    /// Builds a cloud from explicit returns — handy for tests and for
    /// feeding recorded sweeps through the pipeline.
    pub fn from_points(points: Vec<LidarPoint>) -> Self {
        PointCloud { points }
    }

    /// The returns of this sweep.
    pub fn points(&self) -> &[LidarPoint] {
        &self.points
    }

    /// Mutable access to the returns — the fault-injection harness
    /// ([`crate::faults`]) corrupts sweeps in place through this.
    pub fn points_mut(&mut self) -> &mut Vec<LidarPoint> {
        &mut self.points
    }

    /// Number of returns.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the sweep has no returns.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// LiDAR synthesis parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LidarConfig {
    /// Surface points an unoccluded object at 10 m produces.
    pub points_at_10m: usize,
    /// Ground returns across the whole scene.
    pub ground_points: usize,
    /// Clutter (spurious) returns across the whole scene.
    pub clutter_points: usize,
    /// Gaussian position noise σ in metres.
    pub noise_sigma: f32,
    /// Weather dropout: fraction of returns discarded after synthesis, in
    /// `[0, 1)` — rain/fog absorption thinning the sweep uniformly. At the
    /// default `0.0` the synthesis path is byte-identical to before the
    /// knob existed (no RNG draws are spent).
    pub dropout: f32,
}

impl Default for LidarConfig {
    fn default() -> Self {
        LidarConfig {
            points_at_10m: 220,
            ground_points: 1200,
            clutter_points: 60,
            noise_sigma: 0.02,
            dropout: 0.0,
        }
    }
}

/// Synthesizes the LiDAR sweep of a scene.
///
/// Point budget per object scales with `1/r²` (beam divergence) and with
/// `1 - occlusion`; positions are sampled on the box surfaces with Gaussian
/// sensor noise. Ground and clutter returns fill the rest of the range.
pub fn synthesize(scene: &Scene, config: &LidarConfig, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed ^ scene.seed.rotate_left(17));
    let mut points = Vec::new();

    for obj in &scene.objects {
        let r = obj.range().max(1.0);
        let budget = (config.points_at_10m as f32 * (10.0 / r).powi(2) * (1.0 - obj.occlusion))
            .round() as usize;
        let budget = budget.clamp(3, 4 * config.points_at_10m);
        sample_object_surface(obj, budget, config.noise_sigma, &mut rng, &mut points);
    }

    // Ground plane returns.
    let cfg = &scene.config;
    for _ in 0..config.ground_points {
        let x = rng.gen_range(0.0..cfg.max_range);
        let y = rng.gen_range(-cfg.half_width..cfg.half_width);
        let z = rng.gen_range(-0.05..0.05);
        points.push(LidarPoint {
            position: [x, y, z],
            intensity: 0.1,
        });
    }

    // Random clutter (vegetation, poles, noise).
    for _ in 0..config.clutter_points {
        let x = rng.gen_range(0.0..cfg.max_range);
        let y = rng.gen_range(-cfg.half_width..cfg.half_width);
        let z = rng.gen_range(0.0..3.0);
        points.push(LidarPoint {
            position: [x, y, z],
            intensity: rng.gen_range(0.0..0.4),
        });
    }

    // Weather dropout: thin the finished sweep uniformly. Gated so the
    // default configuration spends no RNG draws here and stays
    // byte-identical to the pre-dropout synthesizer.
    if config.dropout > 0.0 {
        points.retain(|_| rng.gen_range(0.0..1.0f32) >= config.dropout);
    }

    PointCloud { points }
}

fn sample_object_surface(
    obj: &SceneObject,
    budget: usize,
    sigma: f32,
    rng: &mut StdRng,
    out: &mut Vec<LidarPoint>,
) {
    let (l2, w2, h) = (obj.dims[0] / 2.0, obj.dims[1] / 2.0, obj.dims[2]);
    let (s, c) = obj.yaw.sin_cos();
    for _ in 0..budget {
        // Pick a face weighted toward the sensor-facing sides: sample a point
        // on the box surface in local coordinates.
        let face = rng.gen_range(0..5);
        let (lx, ly, lz) = match face {
            0 => (rng.gen_range(-l2..l2), -w2, rng.gen_range(0.0..h)), // right side
            1 => (rng.gen_range(-l2..l2), w2, rng.gen_range(0.0..h)),  // left side
            2 => (l2, rng.gen_range(-w2..w2), rng.gen_range(0.0..h)),  // front
            3 => (-l2, rng.gen_range(-w2..w2), rng.gen_range(0.0..h)), // back
            _ => (rng.gen_range(-l2..l2), rng.gen_range(-w2..w2), h),  // top
        };
        let gx = obj.center[0] + c * lx - s * ly + gauss(rng, sigma);
        let gy = obj.center[1] + s * lx + c * ly + gauss(rng, sigma);
        let gz = lz + gauss(rng, sigma);
        out.push(LidarPoint {
            position: [gx, gy, gz.max(0.0)],
            intensity: rng.gen_range(0.4..0.9),
        });
    }
}

fn gauss(rng: &mut StdRng, sigma: f32) -> f32 {
    // Box–Muller transform.
    let u1: f32 = rng.gen_range(1e-6..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{ObjectClass, SceneConfig};

    fn test_scene(seed: u64) -> Scene {
        Scene::generate(0, &SceneConfig::default(), seed)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let scene = test_scene(5);
        let cfg = LidarConfig::default();
        assert_eq!(synthesize(&scene, &cfg, 1), synthesize(&scene, &cfg, 1));
        assert_ne!(synthesize(&scene, &cfg, 1), synthesize(&scene, &cfg, 2));
    }

    #[test]
    fn near_objects_get_more_points() {
        // Construct a scene with one near and one far car manually.
        let mut scene = test_scene(0);
        scene.objects.clear();
        let base = crate::scene::SceneObject {
            class: ObjectClass::Car,
            center: [10.0, 0.0, 0.78],
            dims: [3.9, 1.6, 1.56],
            yaw: 0.0,
            occlusion: 0.0,
            difficulty: crate::scene::Difficulty::Easy,
        };
        let mut far = base.clone();
        far.center = [50.0, 10.0, 0.78];
        scene.objects.push(base.clone());
        scene.objects.push(far.clone());
        let cfg = LidarConfig {
            ground_points: 0,
            clutter_points: 0,
            ..Default::default()
        };
        let cloud = synthesize(&scene, &cfg, 3);
        let count_near = cloud
            .points()
            .iter()
            .filter(|p| (p.position[0] - 10.0).abs() < 4.0 && p.position[1].abs() < 3.0)
            .count();
        let count_far = cloud
            .points()
            .iter()
            .filter(|p| (p.position[0] - 50.0).abs() < 4.0 && (p.position[1] - 10.0).abs() < 3.0)
            .count();
        assert!(
            count_near > 3 * count_far,
            "near {count_near} vs far {count_far}"
        );
    }

    #[test]
    fn object_points_near_object() {
        let mut scene = test_scene(0);
        scene.objects.truncate(1);
        let obj = scene.objects[0].clone();
        let cfg = LidarConfig {
            ground_points: 0,
            clutter_points: 0,
            ..Default::default()
        };
        let cloud = synthesize(&scene, &cfg, 9);
        let radius = obj.dims[0].max(obj.dims[1]) / 2.0 + 0.5;
        for p in cloud.points() {
            let dx = p.position[0] - obj.center[0];
            let dy = p.position[1] - obj.center[1];
            assert!(
                (dx * dx + dy * dy).sqrt() < radius + 1.0,
                "surface point strayed from object"
            );
        }
    }

    #[test]
    fn ground_points_near_ground() {
        let mut scene = test_scene(0);
        scene.objects.clear();
        let cfg = LidarConfig {
            clutter_points: 0,
            ..Default::default()
        };
        let cloud = synthesize(&scene, &cfg, 4);
        assert_eq!(cloud.len(), cfg.ground_points);
        assert!(cloud.points().iter().all(|p| p.position[2].abs() < 0.1));
    }

    #[test]
    fn occluded_objects_lose_points() {
        let mut scene = test_scene(0);
        scene.objects.clear();
        let mut visible = crate::scene::SceneObject {
            class: ObjectClass::Car,
            center: [20.0, 0.0, 0.78],
            dims: [3.9, 1.6, 1.56],
            yaw: 0.0,
            occlusion: 0.0,
            difficulty: crate::scene::Difficulty::Easy,
        };
        scene.objects.push(visible.clone());
        let cfg = LidarConfig {
            ground_points: 0,
            clutter_points: 0,
            ..Default::default()
        };
        let n_visible = synthesize(&scene, &cfg, 5).len();
        visible.occlusion = 0.8;
        scene.objects[0] = visible;
        let n_occluded = synthesize(&scene, &cfg, 5).len();
        assert!(n_occluded < n_visible / 2, "{n_occluded} vs {n_visible}");
    }

    #[test]
    fn zero_dropout_is_byte_identical_and_positive_dropout_thins() {
        let scene = test_scene(5);
        let base = LidarConfig::default();
        assert_eq!(base.dropout, 0.0);
        // The knob at 0.0 must not perturb existing outputs (no RNG spent).
        let with_field = LidarConfig {
            dropout: 0.0,
            ..base.clone()
        };
        assert_eq!(
            synthesize(&scene, &base, 1),
            synthesize(&scene, &with_field, 1)
        );
        // Heavy dropout thins the sweep roughly proportionally, and stays
        // deterministic for a fixed seed.
        let rainy = LidarConfig {
            dropout: 0.6,
            ..base
        };
        let full = synthesize(&scene, &base, 1).len();
        let thin = synthesize(&scene, &rainy, 1).len();
        assert!(
            thin < full / 2 + full / 10,
            "dropout barely thinned: {thin} of {full}"
        );
        assert!(thin > 0, "dropout must not empty the sweep");
        assert_eq!(synthesize(&scene, &rainy, 1), synthesize(&scene, &rainy, 1));
    }

    #[test]
    fn intensities_in_unit_range() {
        let scene = test_scene(2);
        let cloud = synthesize(&scene, &LidarConfig::default(), 0);
        assert!(cloud
            .points()
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.intensity)));
    }
}
