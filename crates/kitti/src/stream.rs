//! An endless, deterministic frame source for streaming inference.
//!
//! Wraps a generated [`Dataset`] as an infinite iterator of numbered
//! frames, cycling through the dataset's scenes. Frame `i` always carries
//! scene `i % len`, so any two consumers constructed from the same config
//! and seed observe byte-identical frame sequences — the property the
//! streaming-vs-batch determinism tests rely on.
//!
//! The stream is generic over the sensor modality: [`FrameStream`]
//! defaults to LiDAR sweeps ([`PointCloud`]), and
//! `FrameStream<CameraImage>` (aliased as [`CameraFrameStream`]) yields
//! the same scenes rendered through the dataset's camera instead, feeding
//! the SMOKE-style monocular path.

use crate::camera::CameraImage;
use crate::dataset::{Dataset, DatasetConfig};
use crate::faults::{FrameDefect, PayloadFault};
use crate::lidar::PointCloud;
use std::marker::PhantomData;

/// A sensor sample that a [`Dataset`] can synthesize per scene.
///
/// Implementations must be deterministic in `(dataset, scene_index)` so
/// two streams over the same dataset observe identical frames.
pub trait SensorData: Clone + Send + 'static {
    /// Synthesizes this modality's sample for a dataset scene.
    fn sample(dataset: &Dataset, scene_index: usize) -> Self;

    /// Applies a payload fault in place — the fault-injection harness'
    /// modality hook ([`crate::faults`]). The default is a no-op so
    /// minimal test modalities need not care about chaos runs.
    fn corrupt(&mut self, _fault: &PayloadFault, _salt: u64) {}

    /// Firewall inspection: a defect the supervision layer should
    /// quarantine on, or `None` for a clean frame. Must not modify the
    /// sample — clean frames pass through bit-identical.
    fn defect(&self) -> Option<FrameDefect> {
        None
    }
}

impl SensorData for PointCloud {
    fn sample(dataset: &Dataset, scene_index: usize) -> Self {
        dataset.lidar(scene_index)
    }

    fn corrupt(&mut self, fault: &PayloadFault, salt: u64) {
        crate::faults::corrupt_cloud(self, fault, salt);
    }

    fn defect(&self) -> Option<FrameDefect> {
        crate::faults::inspect_cloud(self)
    }
}

impl SensorData for CameraImage {
    fn sample(dataset: &Dataset, scene_index: usize) -> Self {
        dataset.camera(scene_index)
    }

    fn corrupt(&mut self, fault: &PayloadFault, salt: u64) {
        crate::faults::corrupt_image(self, fault, salt);
    }

    fn defect(&self) -> Option<FrameDefect> {
        crate::faults::inspect_image(self)
    }
}

/// One frame drawn from the stream.
#[derive(Debug, Clone)]
pub struct Frame<T = PointCloud> {
    /// Monotone frame number (0, 1, 2, …).
    pub id: u64,
    /// Index of the backing scene in the dataset.
    pub scene_index: usize,
    /// The frame's sensor sample (LiDAR sweep or rendered camera image).
    pub data: T,
}

/// Endless deterministic iterator over one sensor modality of a dataset.
#[derive(Debug, Clone)]
pub struct FrameStream<T: SensorData = PointCloud> {
    dataset: Dataset,
    next_id: u64,
    _modality: PhantomData<T>,
}

/// The camera-modality stream feeding the SMOKE detector.
pub type CameraFrameStream = FrameStream<CameraImage>;

impl<T: SensorData> FrameStream<T> {
    /// Generates the backing dataset from `config` and `seed` and starts
    /// the stream at frame 0.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        FrameStream::from_dataset(Dataset::generate(config, seed))
    }

    /// Streams an already-generated dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset — an endless stream needs at least one
    /// scene to cycle through.
    pub fn from_dataset(dataset: Dataset) -> Self {
        assert!(!dataset.is_empty(), "cannot stream an empty dataset");
        FrameStream {
            dataset,
            next_id: 0,
            _modality: PhantomData,
        }
    }

    /// The backing dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The frame with the given id, without advancing the stream.
    pub fn frame(&self, id: u64) -> Frame<T> {
        let scene_index = (id % self.dataset.len() as u64) as usize;
        Frame {
            id,
            scene_index,
            data: T::sample(&self.dataset, scene_index),
        }
    }
}

impl<T: SensorData> Iterator for FrameStream<T> {
    type Item = Frame<T>;

    fn next(&mut self) -> Option<Frame<T>> {
        let frame = self.frame(self.next_id);
        self.next_id += 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> FrameStream {
        let mut cfg = DatasetConfig::small();
        cfg.scenes = 3;
        FrameStream::generate(&cfg, 11)
    }

    #[test]
    fn stream_is_endless_and_cycles_scenes() {
        let frames: Vec<Frame> = stream().take(7).collect();
        assert_eq!(frames.len(), 7);
        let ids: Vec<u64> = frames.iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        let scenes: Vec<usize> = frames.iter().map(|f| f.scene_index).collect();
        assert_eq!(scenes, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn two_streams_from_same_seed_are_identical() {
        for (a, b) in stream().zip(stream()).take(5) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.data.points(), b.data.points());
        }
    }

    #[test]
    fn cycled_frames_repeat_their_scene_cloud() {
        let mut s = stream();
        let first = s.next().unwrap();
        let repeat = s.nth(2).unwrap(); // frame 3 → scene 0 again
        assert_eq!(repeat.scene_index, first.scene_index);
        assert_eq!(repeat.data.points(), first.data.points());
    }

    #[test]
    fn camera_stream_yields_rendered_frames_deterministically() {
        let mut cfg = DatasetConfig::small();
        cfg.scenes = 2;
        let a: Vec<Frame<CameraImage>> = CameraFrameStream::generate(&cfg, 11).take(4).collect();
        let b: Vec<Frame<CameraImage>> = CameraFrameStream::generate(&cfg, 11).take(4).collect();
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.id, fb.id);
            assert_eq!(fa.data.tensor(), fb.data.tensor());
        }
        // Frame 2 cycles back to scene 0's rendering.
        assert_eq!(a[2].scene_index, 0);
        assert_eq!(a[2].data.tensor(), a[0].data.tensor());
    }

    #[test]
    fn lidar_and_camera_streams_share_scene_schedule() {
        let mut cfg = DatasetConfig::small();
        cfg.scenes = 3;
        let lidar: FrameStream = FrameStream::generate(&cfg, 5);
        let camera: CameraFrameStream = FrameStream::generate(&cfg, 5);
        for (l, c) in lidar.zip(camera).take(6) {
            assert_eq!(l.id, c.id);
            assert_eq!(l.scene_index, c.scene_index);
        }
    }
}
