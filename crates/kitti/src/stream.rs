//! An endless, deterministic frame source for streaming inference.
//!
//! Wraps a generated [`Dataset`] as an infinite iterator of numbered
//! frames, cycling through the dataset's scenes. Frame `i` always carries
//! scene `i % len`, so any two consumers constructed from the same config
//! and seed observe byte-identical frame sequences — the property the
//! streaming-vs-batch determinism test relies on.

use crate::dataset::{Dataset, DatasetConfig};
use crate::lidar::PointCloud;

/// One frame drawn from the stream.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Monotone frame number (0, 1, 2, …).
    pub id: u64,
    /// Index of the backing scene in the dataset.
    pub scene_index: usize,
    /// The frame's LiDAR return.
    pub cloud: PointCloud,
}

/// Endless deterministic iterator over a dataset's LiDAR frames.
#[derive(Debug, Clone)]
pub struct FrameStream {
    dataset: Dataset,
    next_id: u64,
}

impl FrameStream {
    /// Generates the backing dataset from `config` and `seed` and starts
    /// the stream at frame 0.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        FrameStream::from_dataset(Dataset::generate(config, seed))
    }

    /// Streams an already-generated dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset — an endless stream needs at least one
    /// scene to cycle through.
    pub fn from_dataset(dataset: Dataset) -> Self {
        assert!(!dataset.is_empty(), "cannot stream an empty dataset");
        FrameStream {
            dataset,
            next_id: 0,
        }
    }

    /// The backing dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The frame that [`next`][Iterator::next] would return, without
    /// advancing the stream.
    pub fn frame(&self, id: u64) -> Frame {
        let scene_index = (id % self.dataset.len() as u64) as usize;
        Frame {
            id,
            scene_index,
            cloud: self.dataset.lidar(scene_index),
        }
    }
}

impl Iterator for FrameStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        let frame = self.frame(self.next_id);
        self.next_id += 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> FrameStream {
        let mut cfg = DatasetConfig::small();
        cfg.scenes = 3;
        FrameStream::generate(&cfg, 11)
    }

    #[test]
    fn stream_is_endless_and_cycles_scenes() {
        let frames: Vec<Frame> = stream().take(7).collect();
        assert_eq!(frames.len(), 7);
        let ids: Vec<u64> = frames.iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        let scenes: Vec<usize> = frames.iter().map(|f| f.scene_index).collect();
        assert_eq!(scenes, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn two_streams_from_same_seed_are_identical() {
        for (a, b) in stream().zip(stream()).take(5) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.cloud.points(), b.cloud.points());
        }
    }

    #[test]
    fn cycled_frames_repeat_their_scene_cloud() {
        let mut s = stream();
        let first = s.next().unwrap();
        let repeat = s.nth(2).unwrap(); // frame 3 → scene 0 again
        assert_eq!(repeat.scene_index, first.scene_index);
        assert_eq!(repeat.cloud.points(), first.cloud.points());
    }
}
