//! Deterministic fault-injection plans for chaos testing.
//!
//! Safety-critical perception stacks meet faults the scenario catalog's
//! clean degradation sweeps never produce: DMA transfers that truncate a
//! sweep mid-frame, sensors that emit NaN/Inf payloads after a brown-out,
//! drivers that stall for tens of milliseconds, and plain software bugs
//! that panic inside a worker. A [`FaultPlan`] is a seed-deterministic
//! per-frame schedule of such faults, composable with any
//! [`crate::scenario`] profile: the plan decides *which* frames are hit
//! and *how*, the profile decides everything else about the run. Equal
//! plans produce bit-identical corruption, so chaos runs are replayable
//! and the supervision layer's accounting can be asserted exactly.
//!
//! Fault taxonomy:
//!
//! * **Payload faults** ([`PayloadFault`]) corrupt the sensor sample
//!   itself — NaN/Inf values, truncated sweeps, zero-length frames. The
//!   runtime's admission firewall quarantines the detectably-poisoned
//!   ones (non-finite or empty); truncation that leaves a plausible frame
//!   passes through and exercises graceful degradation instead.
//! * **Stalls** delay the *arrival* of a frame (sensor hiccup) — nothing
//!   is corrupted, but downstream deadlines tighten.
//! * **Injected panics** fire inside the backbone layer, exercising
//!   `catch_unwind` isolation and worker respawn.
//! * **Latency spikes** add wall time to the backbone invocation
//!   (thermal throttling), exercising watchdog deadlines.

use crate::camera::{CameraImage, CAMERA_CHANNELS};
use crate::lidar::PointCloud;
use serde::{Deserialize, Serialize};
use upaq_tensor::{Shape, Tensor};

/// Corruption applied to a frame's sensor payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PayloadFault {
    /// Replace roughly `frac` of the values/points with NaN (at least one
    /// on any non-empty frame, so a scheduled fault is always detectable).
    NanValues {
        /// Fraction of the payload corrupted, in `[0, 1]`.
        frac: f32,
    },
    /// Replace roughly `frac` of the values/points with ±∞.
    InfValues {
        /// Fraction of the payload corrupted, in `[0, 1]`.
        frac: f32,
    },
    /// Keep only the leading `keep_frac` of the payload — a truncated DMA
    /// transfer. The remainder is dropped (LiDAR) or zeroed (camera rows),
    /// so the frame stays structurally valid but information-poor.
    Truncate {
        /// Fraction of the payload kept, in `[0, 1]`.
        keep_frac: f32,
    },
    /// A zero-length frame: the sensor produced nothing this cycle.
    Empty,
}

/// What a [`FaultRule`] does to the frames it fires on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Corrupt the sensor payload before it enters the pipeline.
    Payload(PayloadFault),
    /// Delay the frame's arrival by this many extra seconds.
    Stall {
        /// Extra inter-frame gap, seconds.
        extra_gap_s: f64,
    },
    /// Panic inside the backbone layer while processing the frame.
    PanicInBackbone,
    /// Add wall time to the backbone invocation handling the frame.
    LatencySpike {
        /// Extra backbone latency, seconds.
        extra_s: f64,
    },
}

/// One periodic fault: fires on every frame with
/// `frame_id % every == offset % every`.
///
/// The periodic form keeps schedules trivially deterministic and lets
/// tests enumerate exactly which frames of a run are hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// The fault applied.
    pub kind: FaultKind,
    /// Period in frames (0 disables the rule).
    pub every: u64,
    /// Phase within the period.
    pub offset: u64,
}

impl FaultRule {
    /// Whether this rule fires on `frame_id`.
    pub fn fires_at(&self, frame_id: u64) -> bool {
        self.every > 0 && frame_id % self.every == self.offset % self.every
    }
}

/// Everything the plan does to one frame, pre-resolved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameFaults {
    /// Payload corruption, if any (the last matching payload rule wins).
    pub payload: Option<PayloadFault>,
    /// Total extra arrival delay, seconds (stall rules accumulate).
    pub stall_s: f64,
    /// Whether the backbone panics on this frame.
    pub panic: bool,
    /// Total extra backbone latency, seconds (spike rules accumulate).
    pub spike_s: f64,
}

impl FrameFaults {
    /// `true` when the frame is untouched by the plan.
    pub fn is_clean(&self) -> bool {
        self.payload.is_none() && self.stall_s == 0.0 && !self.panic && self.spike_s == 0.0
    }
}

/// A named, seed-deterministic schedule of per-frame faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Catalog key, e.g. `nan-burst`.
    pub name: &'static str,
    /// One-line description of the failure mode modeled.
    pub description: &'static str,
    /// Seed for the corruption value/index draws. Two plans with equal
    /// rules but different seeds hit the same frames with different
    /// corrupted indices.
    pub seed: u64,
    /// The periodic rules composing the plan.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules — the chaos matrix's control row.
    pub fn clean() -> Self {
        FaultPlan {
            name: "clean",
            description: "no faults injected (control)",
            seed: 0,
            rules: Vec::new(),
        }
    }

    /// `true` when the plan never injects anything.
    pub fn is_clean(&self) -> bool {
        self.rules.iter().all(|r| r.every == 0)
    }

    /// Resolves every rule against one frame id.
    pub fn frame(&self, frame_id: u64) -> FrameFaults {
        let mut f = FrameFaults::default();
        for rule in &self.rules {
            if !rule.fires_at(frame_id) {
                continue;
            }
            match &rule.kind {
                FaultKind::Payload(p) => f.payload = Some(p.clone()),
                FaultKind::Stall { extra_gap_s } => f.stall_s += extra_gap_s,
                FaultKind::PanicInBackbone => f.panic = true,
                FaultKind::LatencySpike { extra_s } => f.spike_s += extra_s,
            }
        }
        f
    }

    /// Per-frame corruption salt: which indices get poisoned on this
    /// frame. Deterministic in `(seed, frame_id)`.
    pub fn salt(&self, frame_id: u64) -> u64 {
        splitmix64(self.seed ^ frame_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Frame ids in `0..frames` scheduled for a payload fault — what the
    /// chaos tests compare the runtime's quarantine set against.
    pub fn payload_frames(&self, frames: u64) -> Vec<u64> {
        (0..frames)
            .filter(|id| self.frame(*id).payload.is_some())
            .collect()
    }

    /// Frame ids in `0..frames` scheduled for an injected panic.
    pub fn panic_frames(&self, frames: u64) -> Vec<u64> {
        (0..frames).filter(|id| self.frame(*id).panic).collect()
    }
}

/// A defect the admission firewall can detect in a sensor payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameDefect {
    /// The payload contains NaN or ±∞ values.
    NonFinite,
    /// The payload is zero-length.
    Empty,
    /// The payload tensor has the wrong layout for its modality.
    BadShape,
}

/// The named fault plans the chaos matrix runs, `clean` first.
pub fn catalog() -> Vec<FaultPlan> {
    vec![
        FaultPlan::clean(),
        FaultPlan {
            name: "nan-burst",
            description: "periodic NaN/Inf payload corruption (sensor brown-out)",
            seed: 0xBAD_F00D,
            rules: vec![
                FaultRule {
                    kind: FaultKind::Payload(PayloadFault::NanValues { frac: 0.25 }),
                    every: 3,
                    offset: 1,
                },
                FaultRule {
                    kind: FaultKind::Payload(PayloadFault::InfValues { frac: 0.10 }),
                    every: 5,
                    offset: 3,
                },
            ],
        },
        FaultPlan {
            name: "truncation",
            description: "truncated DMA frames, periodically empty",
            seed: 0x7A0C,
            rules: vec![
                FaultRule {
                    kind: FaultKind::Payload(PayloadFault::Truncate { keep_frac: 0.25 }),
                    every: 3,
                    offset: 0,
                },
                FaultRule {
                    kind: FaultKind::Payload(PayloadFault::Empty),
                    every: 4,
                    offset: 2,
                },
            ],
        },
        FaultPlan {
            name: "sensor-stall",
            description: "periodic arrival gaps (driver hiccups)",
            seed: 0x57A11,
            rules: vec![FaultRule {
                kind: FaultKind::Stall { extra_gap_s: 0.060 },
                every: 4,
                offset: 2,
            }],
        },
        FaultPlan {
            name: "panic-storm",
            description: "periodic panics inside the backbone layer",
            seed: 0xDEAD,
            rules: vec![FaultRule {
                kind: FaultKind::PanicInBackbone,
                every: 3,
                offset: 2,
            }],
        },
        FaultPlan {
            name: "latency-spike",
            description: "periodic backbone latency spikes (thermal throttling)",
            seed: 0x5B1CE,
            rules: vec![FaultRule {
                kind: FaultKind::LatencySpike { extra_s: 0.050 },
                every: 4,
                offset: 1,
            }],
        },
        FaultPlan {
            name: "mixed",
            description: "NaN payloads, panics, stalls and spikes interleaved",
            seed: 0x313D,
            rules: vec![
                FaultRule {
                    kind: FaultKind::Payload(PayloadFault::NanValues { frac: 0.15 }),
                    every: 5,
                    offset: 1,
                },
                FaultRule {
                    kind: FaultKind::PanicInBackbone,
                    every: 6,
                    offset: 3,
                },
                FaultRule {
                    kind: FaultKind::Stall { extra_gap_s: 0.040 },
                    every: 7,
                    offset: 5,
                },
                FaultRule {
                    kind: FaultKind::LatencySpike { extra_s: 0.040 },
                    every: 7,
                    offset: 2,
                },
            ],
        },
    ]
}

/// Looks a plan up by its catalog name.
pub fn by_name(name: &str) -> Option<FaultPlan> {
    catalog().into_iter().find(|p| p.name == name)
}

/// The catalog's plan names, in order.
pub fn names() -> Vec<&'static str> {
    catalog().iter().map(|p| p.name).collect()
}

/// Applies a payload fault to a LiDAR sweep in place.
///
/// Value faults always corrupt at least one point of a non-empty sweep,
/// so every scheduled fault frame is detectable by [`inspect_cloud`].
pub fn corrupt_cloud(cloud: &mut PointCloud, fault: &PayloadFault, salt: u64) {
    match fault {
        PayloadFault::NanValues { frac } => poison_cloud(cloud, *frac, salt, f32::NAN),
        PayloadFault::InfValues { frac } => poison_cloud(cloud, *frac, salt, f32::INFINITY),
        PayloadFault::Truncate { keep_frac } => {
            let keep = (cloud.len() as f32 * keep_frac.clamp(0.0, 1.0)) as usize;
            cloud.points_mut().truncate(keep);
        }
        PayloadFault::Empty => cloud.points_mut().clear(),
    }
}

fn poison_cloud(cloud: &mut PointCloud, frac: f32, salt: u64, value: f32) {
    let n = cloud.len();
    if n == 0 {
        return;
    }
    let hits = ((n as f32 * frac.clamp(0.0, 1.0)) as usize).max(1);
    let mut state = salt;
    for _ in 0..hits {
        state = splitmix64(state);
        let p = &mut cloud.points_mut()[(state % n as u64) as usize];
        p.position = [value; 3];
        p.intensity = value;
    }
}

/// Applies a payload fault to a camera frame in place.
pub fn corrupt_image(image: &mut CameraImage, fault: &PayloadFault, salt: u64) {
    match fault {
        PayloadFault::NanValues { frac } => poison_image(image, *frac, salt, f32::NAN),
        PayloadFault::InfValues { frac } => poison_image(image, *frac, salt, f32::INFINITY),
        PayloadFault::Truncate { keep_frac } => {
            // A truncated transfer: rows past the kept prefix read zero in
            // every channel. Structurally valid, information-poor.
            let (h, w) = (image.height(), image.width());
            let keep_rows = (h as f32 * keep_frac.clamp(0.0, 1.0)) as usize;
            let data = image.tensor_mut().as_mut_slice();
            for c in 0..CAMERA_CHANNELS {
                for y in keep_rows..h {
                    let row = (c * h + y) * w;
                    data[row..row + w].fill(0.0);
                }
            }
        }
        PayloadFault::Empty => {
            *image = CameraImage::from_tensor(Tensor::zeros(Shape::nchw(1, CAMERA_CHANNELS, 0, 0)));
        }
    }
}

fn poison_image(image: &mut CameraImage, frac: f32, salt: u64, value: f32) {
    let data = image.tensor_mut().as_mut_slice();
    let n = data.len();
    if n == 0 {
        return;
    }
    let hits = ((n as f32 * frac.clamp(0.0, 1.0)) as usize).max(1);
    let mut state = salt;
    for _ in 0..hits {
        state = splitmix64(state);
        data[(state % n as u64) as usize] = value;
    }
}

/// Firewall check for a LiDAR sweep: empty or non-finite payloads are
/// defective; anything else passes untouched.
pub fn inspect_cloud(cloud: &PointCloud) -> Option<FrameDefect> {
    if cloud.is_empty() {
        return Some(FrameDefect::Empty);
    }
    let poisoned = cloud
        .points()
        .iter()
        .any(|p| !p.intensity.is_finite() || p.position.iter().any(|v| !v.is_finite()));
    poisoned.then_some(FrameDefect::NonFinite)
}

/// Firewall check for a camera frame: the tensor must be `[1, C, H, W]`
/// with non-zero area and fully finite values.
pub fn inspect_image(image: &CameraImage) -> Option<FrameDefect> {
    let shape = image.tensor().shape();
    if shape.rank() != 4 || shape.dim(0) != 1 || shape.dim(1) != CAMERA_CHANNELS {
        return Some(FrameDefect::BadShape);
    }
    if shape.dim(2) == 0 || shape.dim(3) == 0 {
        return Some(FrameDefect::Empty);
    }
    let poisoned = image.tensor().as_slice().iter().any(|v| !v.is_finite());
    poisoned.then_some(FrameDefect::NonFinite)
}

/// SplitMix64: the corruption index generator. Small, seedable, and
/// independent of the shim RNG so plans stay stable if that changes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use crate::stream::SensorData;

    fn cloud() -> PointCloud {
        let dataset = Dataset::generate(&DatasetConfig::small(), 7);
        dataset.lidar(0)
    }

    fn image() -> CameraImage {
        let dataset = Dataset::generate(&DatasetConfig::small(), 7);
        dataset.camera(0)
    }

    #[test]
    fn rules_fire_periodically() {
        let rule = FaultRule {
            kind: FaultKind::PanicInBackbone,
            every: 4,
            offset: 2,
        };
        let fired: Vec<u64> = (0..12).filter(|id| rule.fires_at(*id)).collect();
        assert_eq!(fired, vec![2, 6, 10]);
        let off = FaultRule { every: 0, ..rule };
        assert!((0..12).all(|id| !off.fires_at(id)));
    }

    #[test]
    fn plans_are_deterministic_and_catalog_resolves() {
        assert!(!names().is_empty());
        for plan in catalog() {
            let again = by_name(plan.name).expect("catalog name resolves");
            assert_eq!(plan, again);
            for id in 0..16 {
                assert_eq!(plan.frame(id), again.frame(id));
                assert_eq!(plan.salt(id), again.salt(id));
            }
        }
        assert!(by_name("no-such-plan").is_none());
        assert!(FaultPlan::clean().is_clean());
        assert!((0..64).all(|id| FaultPlan::clean().frame(id).is_clean()));
    }

    #[test]
    fn payload_and_panic_frames_enumerate_the_schedule() {
        let plan = by_name("mixed").unwrap();
        for id in plan.payload_frames(32) {
            assert!(plan.frame(id).payload.is_some());
        }
        for id in plan.panic_frames(32) {
            assert!(plan.frame(id).panic);
        }
        assert!(!plan.payload_frames(32).is_empty());
        assert!(!plan.panic_frames(32).is_empty());
    }

    #[test]
    fn nan_corruption_is_detected_and_deterministic() {
        let clean = cloud();
        assert!(inspect_cloud(&clean).is_none());
        let fault = PayloadFault::NanValues { frac: 0.1 };
        let mut a = clean.clone();
        let mut b = clean.clone();
        corrupt_cloud(&mut a, &fault, 42);
        corrupt_cloud(&mut b, &fault, 42);
        // Raw-bits compare: NaN breaks PartialEq but not determinism.
        let bits = |c: &PointCloud| -> Vec<[u32; 4]> {
            c.points()
                .iter()
                .map(|p| {
                    [
                        p.position[0].to_bits(),
                        p.position[1].to_bits(),
                        p.position[2].to_bits(),
                        p.intensity.to_bits(),
                    ]
                })
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "equal salts must corrupt identically");
        assert_eq!(inspect_cloud(&a), Some(FrameDefect::NonFinite));
        let mut c = clean.clone();
        corrupt_cloud(&mut c, &PayloadFault::InfValues { frac: 0.0 }, 9);
        assert_eq!(
            inspect_cloud(&c),
            Some(FrameDefect::NonFinite),
            "even frac=0 corrupts at least one point"
        );
    }

    #[test]
    fn truncation_thins_and_empty_empties() {
        let clean = cloud();
        let mut thin = clean.clone();
        corrupt_cloud(&mut thin, &PayloadFault::Truncate { keep_frac: 0.25 }, 0);
        assert!(thin.len() <= clean.len() / 3);
        assert!(
            inspect_cloud(&thin).is_none(),
            "a thin-but-nonempty sweep passes the firewall"
        );
        let mut empty = clean;
        corrupt_cloud(&mut empty, &PayloadFault::Empty, 0);
        assert_eq!(inspect_cloud(&empty), Some(FrameDefect::Empty));
    }

    #[test]
    fn image_corruption_is_detected() {
        let clean = image();
        assert!(inspect_image(&clean).is_none());
        let mut nan = clean.clone();
        corrupt_image(&mut nan, &PayloadFault::NanValues { frac: 0.05 }, 3);
        assert_eq!(inspect_image(&nan), Some(FrameDefect::NonFinite));
        let mut empty = clean.clone();
        corrupt_image(&mut empty, &PayloadFault::Empty, 0);
        assert_eq!(inspect_image(&empty), Some(FrameDefect::Empty));
        let mut cut = clean.clone();
        corrupt_image(&mut cut, &PayloadFault::Truncate { keep_frac: 0.5 }, 0);
        assert!(
            inspect_image(&cut).is_none(),
            "zeroed rows stay structurally valid"
        );
        assert_eq!(cut.width(), clean.width());
        assert_eq!(cut.height(), clean.height());
    }

    #[test]
    fn sensor_data_trait_routes_to_the_modality_corruptor() {
        let mut c = cloud();
        c.corrupt(&PayloadFault::Empty, 0);
        assert_eq!(c.defect(), Some(FrameDefect::Empty));
        let mut img = image();
        img.corrupt(&PayloadFault::NanValues { frac: 0.01 }, 1);
        assert_eq!(img.defect(), Some(FrameDefect::NonFinite));
    }
}
