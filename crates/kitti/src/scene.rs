//! Seeded synthetic traffic scenes with exact 3D ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Object categories, matching the three KITTI evaluation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car.
    Car,
    /// Pedestrian.
    Pedestrian,
    /// Cyclist.
    Cyclist,
}

impl ObjectClass {
    /// All classes, in KITTI evaluation order.
    pub const ALL: [ObjectClass; 3] = [
        ObjectClass::Car,
        ObjectClass::Pedestrian,
        ObjectClass::Cyclist,
    ];

    /// Mean object dimensions `(length, width, height)` in metres, from the
    /// KITTI label statistics.
    pub fn mean_dims(self) -> (f32, f32, f32) {
        match self {
            ObjectClass::Car => (3.9, 1.6, 1.56),
            ObjectClass::Pedestrian => (0.8, 0.6, 1.73),
            ObjectClass::Cyclist => (1.76, 0.6, 1.73),
        }
    }

    /// Class index used by detection-head channel layouts.
    pub fn index(self) -> usize {
        match self {
            ObjectClass::Car => 0,
            ObjectClass::Pedestrian => 1,
            ObjectClass::Cyclist => 2,
        }
    }

    /// Whether this class is a vulnerable road user (pedestrian or
    /// cyclist) — the classes the proactive scheduler's safety override
    /// protects from deep degradation.
    pub fn is_vulnerable(self) -> bool {
        matches!(self, ObjectClass::Pedestrian | ObjectClass::Cyclist)
    }

    /// Inverse of [`ObjectClass::index`].
    pub fn from_index(index: usize) -> Option<Self> {
        ObjectClass::ALL.get(index).copied()
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObjectClass::Car => "Car",
            ObjectClass::Pedestrian => "Pedestrian",
            ObjectClass::Cyclist => "Cyclist",
        };
        write!(f, "{name}")
    }
}

/// KITTI-style difficulty bands, assigned from range and occlusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Difficulty {
    /// Near, unoccluded.
    Easy,
    /// Mid-range or partially occluded.
    Moderate,
    /// Far or heavily occluded.
    Hard,
}

/// One ground-truth object: class, pose and size.
///
/// Coordinates follow the KITTI LiDAR frame: `x` forward, `y` left, `z` up,
/// sensor at the origin. `yaw` rotates around `z`, zero pointing along `x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Object category.
    pub class: ObjectClass,
    /// Box centre `(x, y, z)` in metres.
    pub center: [f32; 3],
    /// Box size `(length, width, height)` in metres.
    pub dims: [f32; 3],
    /// Heading around +z, radians in `(-π, π]`.
    pub yaw: f32,
    /// Fraction of the object hidden behind closer objects, in `[0, 1]`.
    pub occlusion: f32,
    /// Difficulty band derived from range and occlusion.
    pub difficulty: Difficulty,
}

impl SceneObject {
    /// Euclidean distance from the sensor, ignoring height.
    pub fn range(&self) -> f32 {
        (self.center[0] * self.center[0] + self.center[1] * self.center[1]).sqrt()
    }

    /// The four BEV (bird's-eye-view) corners `(x, y)` of the box footprint.
    pub fn bev_corners(&self) -> [[f32; 2]; 4] {
        let (l2, w2) = (self.dims[0] / 2.0, self.dims[1] / 2.0);
        let (s, c) = self.yaw.sin_cos();
        let local = [[l2, w2], [l2, -w2], [-l2, -w2], [-l2, w2]];
        local.map(|[lx, ly]| {
            [
                self.center[0] + c * lx - s * ly,
                self.center[1] + s * lx + c * ly,
            ]
        })
    }
}

/// Parameters of the scene generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Detection range forward of the sensor (metres).
    pub max_range: f32,
    /// Lateral half-width of the scene (metres).
    pub half_width: f32,
    /// Cars per scene: `(min, max)` inclusive.
    pub cars: (usize, usize),
    /// Pedestrians per scene: `(min, max)` inclusive.
    pub pedestrians: (usize, usize),
    /// Cyclists per scene: `(min, max)` inclusive.
    pub cyclists: (usize, usize),
}

impl Default for SceneConfig {
    fn default() -> Self {
        // The standard KITTI PointPillars range: 0–69.12 m forward,
        // ±39.68 m lateral.
        SceneConfig {
            max_range: 69.12,
            half_width: 39.68,
            cars: (3, 8),
            pedestrians: (0, 3),
            cyclists: (0, 2),
        }
    }
}

/// A generated traffic scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Scene identifier (its index within the dataset).
    pub id: usize,
    /// Ground-truth objects.
    pub objects: Vec<SceneObject>,
    /// The configuration the scene was generated under.
    pub config: SceneConfig,
    /// Seed that reproduces this exact scene.
    pub seed: u64,
}

impl Scene {
    /// Generates a scene with non-overlapping objects.
    ///
    /// Objects are drawn class by class; placements whose BEV footprints
    /// would collide with an existing object are re-drawn (up to a bounded
    /// number of attempts, so degenerate configs still terminate).
    pub fn generate(id: usize, config: &SceneConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut objects: Vec<SceneObject> = Vec::new();

        let place =
            |rng: &mut StdRng, class: ObjectClass, count: usize, objects: &mut Vec<SceneObject>| {
                for _ in 0..count {
                    for _attempt in 0..32 {
                        let x = rng.gen_range(5.0..config.max_range * 0.95);
                        let y = rng.gen_range(-config.half_width * 0.9..config.half_width * 0.9);
                        let (ml, mw, mh) = class.mean_dims();
                        let jitter = |rng: &mut StdRng, m: f32| m * rng.gen_range(0.85..1.15);
                        let dims = [jitter(rng, ml), jitter(rng, mw), jitter(rng, mh)];
                        let yaw = rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI);
                        let candidate = SceneObject {
                            class,
                            center: [x, y, dims[2] / 2.0],
                            dims,
                            yaw,
                            occlusion: 0.0,
                            difficulty: Difficulty::Easy,
                        };
                        let clear = objects.iter().all(|o| {
                            let dx = o.center[0] - x;
                            let dy = o.center[1] - y;
                            let min_sep =
                                (o.dims[0].max(o.dims[1]) + dims[0].max(dims[1])) / 2.0 + 1.0;
                            dx * dx + dy * dy > min_sep * min_sep
                        });
                        if clear {
                            objects.push(candidate);
                            break;
                        }
                    }
                }
            };

        let n_cars = rng.gen_range(config.cars.0..=config.cars.1);
        let n_peds = rng.gen_range(config.pedestrians.0..=config.pedestrians.1);
        let n_cyc = rng.gen_range(config.cyclists.0..=config.cyclists.1);
        place(&mut rng, ObjectClass::Car, n_cars, &mut objects);
        place(&mut rng, ObjectClass::Pedestrian, n_peds, &mut objects);
        place(&mut rng, ObjectClass::Cyclist, n_cyc, &mut objects);

        // Occlusion: fraction of an object's azimuthal extent shadowed by a
        // closer object at similar bearing.
        let mut occlusions = vec![0.0f32; objects.len()];
        for i in 0..objects.len() {
            let oi = &objects[i];
            let bearing_i = oi.center[1].atan2(oi.center[0]);
            let half_extent_i = (oi.dims[0].max(oi.dims[1]) / 2.0 / oi.range()).atan();
            for oj in &objects {
                if oj.range() >= oi.range() - 0.5 {
                    continue;
                }
                let bearing_j = oj.center[1].atan2(oj.center[0]);
                let half_extent_j = (oj.dims[0].max(oj.dims[1]) / 2.0 / oj.range()).atan();
                let overlap = (half_extent_i + half_extent_j) - (bearing_i - bearing_j).abs();
                if overlap > 0.0 {
                    let frac = (overlap / (2.0 * half_extent_i)).clamp(0.0, 1.0);
                    occlusions[i] = occlusions[i].max(frac);
                }
            }
        }
        for (obj, occ) in objects.iter_mut().zip(occlusions) {
            obj.occlusion = occ;
            obj.difficulty = classify_difficulty(obj.range(), occ);
        }

        Scene {
            id,
            objects,
            config: config.clone(),
            seed,
        }
    }

    /// Objects of a given class.
    pub fn objects_of(&self, class: ObjectClass) -> Vec<&SceneObject> {
        self.objects.iter().filter(|o| o.class == class).collect()
    }

    /// Ground-truth count of vulnerable road users (pedestrians plus
    /// cyclists) — the complexity label the proactive-scheduling safety
    /// tests compare predicted-VRU decisions against.
    pub fn vru_count(&self) -> usize {
        self.objects
            .iter()
            .filter(|o| o.class.is_vulnerable())
            .count()
    }
}

/// KITTI-style difficulty from range and occlusion.
pub fn classify_difficulty(range: f32, occlusion: f32) -> Difficulty {
    if occlusion > 0.5 || range > 50.0 {
        Difficulty::Hard
    } else if occlusion > 0.15 || range > 25.0 {
        Difficulty::Moderate
    } else {
        Difficulty::Easy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SceneConfig::default();
        let a = Scene::generate(3, &cfg, 99);
        let b = Scene::generate(3, &cfg, 99);
        assert_eq!(a, b);
        let c = Scene::generate(3, &cfg, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn objects_inside_bounds() {
        let cfg = SceneConfig::default();
        for seed in 0..5 {
            let scene = Scene::generate(seed as usize, &cfg, seed);
            for o in &scene.objects {
                assert!(o.center[0] >= 0.0 && o.center[0] <= cfg.max_range);
                assert!(o.center[1].abs() <= cfg.half_width);
                assert!(o.center[2] > 0.0, "box centre above ground");
            }
        }
    }

    #[test]
    fn objects_do_not_overlap() {
        let scene = Scene::generate(0, &SceneConfig::default(), 7);
        for (i, a) in scene.objects.iter().enumerate() {
            for b in scene.objects.iter().skip(i + 1) {
                let dx = a.center[0] - b.center[0];
                let dy = a.center[1] - b.center[1];
                let d = (dx * dx + dy * dy).sqrt();
                assert!(d > 1.0, "objects {d} m apart");
            }
        }
    }

    #[test]
    fn car_counts_respect_config() {
        let cfg = SceneConfig {
            cars: (2, 2),
            pedestrians: (0, 0),
            cyclists: (0, 0),
            ..Default::default()
        };
        let scene = Scene::generate(0, &cfg, 1);
        assert_eq!(scene.objects_of(ObjectClass::Car).len(), 2);
        assert!(scene.objects_of(ObjectClass::Pedestrian).is_empty());
    }

    #[test]
    fn difficulty_bands() {
        assert_eq!(classify_difficulty(10.0, 0.0), Difficulty::Easy);
        assert_eq!(classify_difficulty(30.0, 0.0), Difficulty::Moderate);
        assert_eq!(classify_difficulty(60.0, 0.0), Difficulty::Hard);
        assert_eq!(classify_difficulty(10.0, 0.6), Difficulty::Hard);
        assert_eq!(classify_difficulty(10.0, 0.2), Difficulty::Moderate);
    }

    #[test]
    fn bev_corners_centered() {
        let obj = SceneObject {
            class: ObjectClass::Car,
            center: [10.0, 2.0, 0.8],
            dims: [4.0, 2.0, 1.6],
            yaw: 0.0,
            occlusion: 0.0,
            difficulty: Difficulty::Easy,
        };
        let corners = obj.bev_corners();
        let cx: f32 = corners.iter().map(|c| c[0]).sum::<f32>() / 4.0;
        let cy: f32 = corners.iter().map(|c| c[1]).sum::<f32>() / 4.0;
        assert!((cx - 10.0).abs() < 1e-4);
        assert!((cy - 2.0).abs() < 1e-4);
    }

    #[test]
    fn bev_corners_rotate() {
        let mut obj = SceneObject {
            class: ObjectClass::Car,
            center: [0.0, 0.0, 0.8],
            dims: [4.0, 2.0, 1.6],
            yaw: 0.0,
            occlusion: 0.0,
            difficulty: Difficulty::Easy,
        };
        let straight = obj.bev_corners();
        obj.yaw = std::f32::consts::FRAC_PI_2;
        let rotated = obj.bev_corners();
        // After a 90° turn the x-extent becomes the old y-extent.
        let extent = |cs: [[f32; 2]; 4], axis: usize| {
            let vals: Vec<f32> = cs.iter().map(|c| c[axis]).collect();
            vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
                - vals.iter().cloned().fold(f32::INFINITY, f32::min)
        };
        assert!((extent(straight, 0) - extent(rotated, 1)).abs() < 1e-4);
    }

    #[test]
    fn class_index_roundtrip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_index(class.index()), Some(class));
        }
        assert_eq!(ObjectClass::from_index(3), None);
    }

    #[test]
    fn range_is_planar_distance() {
        let obj = SceneObject {
            class: ObjectClass::Car,
            center: [3.0, 4.0, 10.0],
            dims: [1.0, 1.0, 1.0],
            yaw: 0.0,
            occlusion: 0.0,
            difficulty: Difficulty::Easy,
        };
        assert!((obj.range() - 5.0).abs() < 1e-5);
    }
}
