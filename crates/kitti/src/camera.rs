//! Pinhole camera model and synthetic image rendering.
//!
//! The SMOKE-style detector path consumes camera images. We model a KITTI
//! front camera (x forward, y left, z up in the *vehicle* frame; the camera
//! looks along +x) and render a grey-scale-plus-depth image: object
//! silhouettes are painted with class-dependent albedo over a textured
//! background, so a compressed network's detection quality depends on how
//! faithfully its feature maps survive pruning/quantization noise.

use crate::scene::{Scene, SceneObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use upaq_tensor::{Shape, Tensor};

/// Intrinsics of a pinhole camera, KITTI-like by default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraCalib {
    /// Focal length in pixels (x).
    pub fx: f32,
    /// Focal length in pixels (y).
    pub fy: f32,
    /// Principal point x.
    pub cx: f32,
    /// Principal point y.
    pub cy: f32,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Camera height above ground, metres.
    pub mount_height: f32,
}

impl CameraCalib {
    /// A downscaled KITTI-like camera. Real KITTI images are 1242×375 with
    /// f≈721 px; we keep the same field of view at a resolution the pure-Rust
    /// substrate can execute quickly.
    pub fn kitti_small(width: usize, height: usize) -> Self {
        let scale = width as f32 / 1242.0;
        CameraCalib {
            fx: 721.5 * scale,
            fy: 721.5 * scale,
            cx: width as f32 / 2.0,
            cy: height as f32 / 2.0,
            width,
            height,
            mount_height: 1.65,
        }
    }

    /// Projects a vehicle-frame point (x fwd, y left, z up) to pixel
    /// coordinates `(u, v)` plus depth. Returns `None` behind the camera.
    pub fn project(&self, p: [f32; 3]) -> Option<(f32, f32, f32)> {
        let depth = p[0];
        if depth <= 0.1 {
            return None;
        }
        // Camera frame: u grows right (−y), v grows down (−z + mount).
        let u = self.cx + self.fx * (-p[1]) / depth;
        let v = self.cy + self.fy * (self.mount_height - p[2]) / depth;
        Some((u, v, depth))
    }
}

impl Default for CameraCalib {
    fn default() -> Self {
        CameraCalib::kitti_small(124, 38)
    }
}

/// Channels of a rendered camera frame: 0 intensity, 1 inverse depth,
/// 2 direct depth (z-buffer / 80 m), 3 the calibration-derived ground-plane
/// depth prior.
///
/// Channels 2 and 3 are standard monocular-detection inputs: direct depth
/// is just a second encoding of the photometric depth cue, and the
/// ground-plane prior (`f·h_mount / (v − c_v)`) injects the pixel-row
/// geometry that translation-invariant convolutions cannot otherwise see —
/// the CoordConv/LID trick monocular 3D detectors rely on.
pub const CAMERA_CHANNELS: usize = 4;

/// A rendered camera frame — see [`CAMERA_CHANNELS`] for the layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraImage {
    tensor: Tensor,
}

impl CameraImage {
    /// Wraps an arbitrary tensor as a camera frame. The renderer always
    /// produces `[1, 4, H, W]`; the fault-injection harness uses this to
    /// model malformed sensor output, which the admission firewall's
    /// shape check ([`crate::faults::inspect_image`]) then catches.
    pub fn from_tensor(tensor: Tensor) -> Self {
        CameraImage { tensor }
    }

    /// The underlying `[1, 4, H, W]` tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Mutable access to the backing tensor — the fault-injection
    /// harness corrupts frames in place through this.
    pub fn tensor_mut(&mut self) -> &mut Tensor {
        &mut self.tensor
    }

    /// Consumes the image, returning the tensor.
    pub fn into_tensor(self) -> Tensor {
        self.tensor
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.tensor.shape().dim(3)
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.tensor.shape().dim(2)
    }
}

/// Class-dependent albedo painted into the intensity channel.
fn albedo(obj: &SceneObject) -> f32 {
    match obj.class {
        crate::scene::ObjectClass::Car => 0.85,
        crate::scene::ObjectClass::Pedestrian => 0.55,
        crate::scene::ObjectClass::Cyclist => 0.70,
    }
}

/// Renders the scene through `calib` into a `[1, 4, H, W]` image tensor
/// (see [`CAMERA_CHANNELS`]).
///
/// Rendering is a painter's algorithm over object bounding volumes: for each
/// pixel the nearest intersecting object wins; background pixels get a noisy
/// road/sky gradient. Channel 1 stores `10 / depth` (clamped), giving the
/// monocular network a physically-motivated depth cue just like real
/// photometric perspective does.
pub fn render(scene: &Scene, calib: &CameraCalib, seed: u64) -> CameraImage {
    let (w, h) = (calib.width, calib.height);
    let mut rng = StdRng::seed_from_u64(seed ^ scene.seed.rotate_left(29));
    let mut intensity = vec![0.0f32; w * h];
    let mut inv_depth = vec![0.0f32; w * h];
    let mut direct_depth = vec![0.0f32; w * h];
    let mut depth_buf = vec![f32::INFINITY; w * h];

    // Background: sky above the horizon, textured road below.
    for y in 0..h {
        for x in 0..w {
            let horizon = calib.cy as usize;
            let base = if y < horizon {
                0.30
            } else {
                0.15 + 0.05 * (y - horizon) as f32 / h as f32
            };
            intensity[y * w + x] = base + rng.gen_range(-0.02..0.02);
        }
    }

    // Painter's algorithm over object screen-space bounding boxes.
    for obj in &scene.objects {
        let visible = 1.0 - obj.occlusion;
        if visible <= 0.05 {
            continue;
        }
        // Project the 8 box corners; take the screen-space AABB.
        let mut min_u = f32::INFINITY;
        let mut max_u = f32::NEG_INFINITY;
        let mut min_v = f32::INFINITY;
        let mut max_v = f32::NEG_INFINITY;
        let mut any = false;
        for corner in box_corners(obj) {
            if let Some((u, v, _)) = calib.project(corner) {
                min_u = min_u.min(u);
                max_u = max_u.max(u);
                min_v = min_v.min(v);
                max_v = max_v.max(v);
                any = true;
            }
        }
        if !any {
            continue;
        }
        let depth = obj.center[0];
        let x0 = (min_u.floor().max(0.0)) as usize;
        let x1 = (max_u.ceil().min(w as f32 - 1.0)) as usize;
        let y0 = (min_v.floor().max(0.0)) as usize;
        let y1 = (max_v.ceil().min(h as f32 - 1.0)) as usize;
        if x0 > x1 || y0 > y1 {
            continue;
        }
        let a = albedo(obj) * (0.6 + 0.4 * visible);
        for y in y0..=y1 {
            for x in x0..=x1 {
                let idx = y * w + x;
                if depth < depth_buf[idx] {
                    depth_buf[idx] = depth;
                    intensity[idx] = a + rng.gen_range(-0.03..0.03);
                    inv_depth[idx] = (10.0 / depth).min(1.0);
                    direct_depth[idx] = (depth / 80.0).min(1.0);
                }
            }
        }
    }

    // Ground-plane depth prior: a pixel row below the horizon sees the
    // ground at depth f·h_mount / (v − c_v). Pure calibration geometry —
    // no scene content involved.
    let mut prior = vec![0.0f32; w * h];
    for y in 0..h {
        let dv = y as f32 + 0.5 - calib.cy;
        let p = if dv > 0.5 {
            (calib.fy * calib.mount_height / dv / 80.0).min(1.0)
        } else {
            1.0 // at/above the horizon: unbounded depth
        };
        for x in 0..w {
            prior[y * w + x] = p;
        }
    }

    let mut data = intensity;
    data.extend_from_slice(&inv_depth);
    data.extend_from_slice(&direct_depth);
    data.extend_from_slice(&prior);
    let tensor = Tensor::from_vec(Shape::nchw(1, CAMERA_CHANNELS, h, w), data)
        .expect("render buffer matches declared shape");
    CameraImage { tensor }
}

fn box_corners(obj: &SceneObject) -> [[f32; 3]; 8] {
    let bev = obj.bev_corners();
    let z0 = obj.center[2] - obj.dims[2] / 2.0;
    let z1 = obj.center[2] + obj.dims[2] / 2.0;
    [
        [bev[0][0], bev[0][1], z0],
        [bev[1][0], bev[1][1], z0],
        [bev[2][0], bev[2][1], z0],
        [bev[3][0], bev[3][1], z0],
        [bev[0][0], bev[0][1], z1],
        [bev[1][0], bev[1][1], z1],
        [bev[2][0], bev[2][1], z1],
        [bev[3][0], bev[3][1], z1],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{ObjectClass, SceneConfig};

    #[test]
    fn projection_center_maps_to_principal_point() {
        let calib = CameraCalib::kitti_small(100, 40);
        // A point straight ahead at camera height projects to (cx, cy).
        let (u, v, d) = calib.project([20.0, 0.0, calib.mount_height]).unwrap();
        assert!((u - calib.cx).abs() < 1e-3);
        assert!((v - calib.cy).abs() < 1e-3);
        assert!((d - 20.0).abs() < 1e-5);
    }

    #[test]
    fn points_behind_camera_rejected() {
        let calib = CameraCalib::default();
        assert!(calib.project([-5.0, 0.0, 1.0]).is_none());
    }

    #[test]
    fn left_points_project_left() {
        let calib = CameraCalib::kitti_small(100, 40);
        // +y is left in the vehicle frame → smaller u.
        let (u_left, _, _) = calib.project([20.0, 5.0, 1.0]).unwrap();
        let (u_right, _, _) = calib.project([20.0, -5.0, 1.0]).unwrap();
        assert!(u_left < calib.cx && u_right > calib.cx);
    }

    #[test]
    fn render_is_deterministic() {
        let scene = Scene::generate(0, &SceneConfig::default(), 11);
        let calib = CameraCalib::default();
        assert_eq!(render(&scene, &calib, 3), render(&scene, &calib, 3));
    }

    #[test]
    fn rendered_shape_matches_calib() {
        let scene = Scene::generate(0, &SceneConfig::default(), 1);
        let calib = CameraCalib::kitti_small(64, 24);
        let img = render(&scene, &calib, 0);
        assert_eq!(img.tensor().shape().dims(), &[1, CAMERA_CHANNELS, 24, 64]);
        assert_eq!(img.width(), 64);
        assert_eq!(img.height(), 24);
    }

    #[test]
    fn objects_brighten_pixels() {
        // A close car ahead must paint pixels brighter than the background.
        let mut scene = Scene::generate(0, &SceneConfig::default(), 1);
        scene.objects.clear();
        scene.objects.push(crate::scene::SceneObject {
            class: ObjectClass::Car,
            center: [10.0, 0.0, 0.78],
            dims: [3.9, 1.6, 1.56],
            yaw: 0.0,
            occlusion: 0.0,
            difficulty: crate::scene::Difficulty::Easy,
        });
        let calib = CameraCalib::kitti_small(124, 38);
        let img = render(&scene, &calib, 0);
        let max_intensity = img
            .tensor()
            .as_slice()
            .iter()
            .take(38 * 124)
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            max_intensity > 0.6,
            "car should paint bright pixels, max={max_intensity}"
        );
    }

    #[test]
    fn depth_channel_encodes_inverse_depth() {
        let mut scene = Scene::generate(0, &SceneConfig::default(), 1);
        scene.objects.clear();
        scene.objects.push(crate::scene::SceneObject {
            class: ObjectClass::Car,
            center: [20.0, 0.0, 0.78],
            dims: [3.9, 1.6, 1.56],
            yaw: 0.0,
            occlusion: 0.0,
            difficulty: crate::scene::Difficulty::Easy,
        });
        let calib = CameraCalib::kitti_small(124, 38);
        let img = render(&scene, &calib, 0);
        let n = 38 * 124;
        let inv_depth_max = img.tensor().as_slice()[n..2 * n]
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            (inv_depth_max - 0.5).abs() < 0.05,
            "10/20 = 0.5, got {inv_depth_max}"
        );
        // Direct-depth channel carries 20/80 = 0.25 at the painted pixels.
        let direct_max = img.tensor().as_slice()[2 * n..3 * n]
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            (direct_max - 0.25).abs() < 0.05,
            "20/80 = 0.25, got {direct_max}"
        );
        // Ground-plane prior decreases with pixel row below the horizon.
        let prior = &img.tensor().as_slice()[3 * n..4 * n];
        let top_row = prior[0];
        let bottom_row = prior[(38 - 1) * 124];
        assert!(
            bottom_row < top_row,
            "prior must shrink toward the near ground"
        );
    }
}
