//! Synthetic KITTI-like dataset for the UPAQ reproduction.
//!
//! The paper evaluates on the KITTI automotive dataset (LiDAR point clouds
//! plus RGB images, split 80:10:10). This environment has no KITTI download,
//! so this crate synthesizes an equivalent workload:
//!
//! * [`scene`] — seeded scene generation: cars, pedestrians and cyclists
//!   placed on a ground plane inside the standard KITTI detection range,
//!   with KITTI-style easy/moderate/hard difficulty labels;
//! * [`lidar`] — LiDAR point-cloud synthesis with range-dependent point
//!   density, per-object occlusion and sensor noise;
//! * [`camera`] — a pinhole camera model with KITTI-like intrinsics and a
//!   simple photometric renderer producing image tensors for the
//!   camera-based (SMOKE-style) detector path;
//! * [`dataset`] — reproducible dataset assembly and the 80/10/10
//!   train/val/test split the paper uses.
//!
//! Determinism: every generator takes an explicit `u64` seed; equal seeds
//! produce bit-identical scenes, clouds and images.
//!
//! # Example
//!
//! ```
//! use upaq_kitti::dataset::{Dataset, DatasetConfig};
//!
//! let dataset = Dataset::generate(&DatasetConfig::small(), 42);
//! let split = dataset.split();
//! assert!(split.train.len() > split.val.len());
//! let cloud = dataset.lidar(split.val[0]);
//! assert!(!cloud.points().is_empty());
//! ```

pub mod camera;
pub mod dataset;
pub mod faults;
pub mod fleet;
pub mod lidar;
pub mod scenario;
pub mod scene;
pub mod stream;

pub use camera::{CameraCalib, CameraImage};
pub use dataset::{Dataset, DatasetConfig, Split};
pub use faults::{FaultKind, FaultPlan, FaultRule, FrameDefect, FrameFaults, PayloadFault};
pub use fleet::{FleetScenario, FleetScenarioConfig, StreamClass, StreamProfile};
pub use lidar::{LidarConfig, PointCloud};
pub use scenario::{ArrivalPattern, ScenarioProfile};
pub use scene::{Difficulty, ObjectClass, Scene, SceneConfig, SceneObject};
pub use stream::{CameraFrameStream, Frame, FrameStream, SensorData};
