//! Reproducible dataset assembly and the paper's 80/10/10 split.

use crate::camera::{render, CameraCalib, CameraImage};
use crate::lidar::{synthesize, LidarConfig, PointCloud};
use crate::scene::{Scene, SceneConfig};
use serde::{Deserialize, Serialize};

/// Dataset generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of scenes to generate.
    pub scenes: usize,
    /// Scene generation parameters.
    pub scene: SceneConfig,
    /// LiDAR synthesis parameters.
    pub lidar: LidarConfig,
    /// Camera calibration used for rendering.
    pub camera: CameraCalib,
}

impl DatasetConfig {
    /// A small configuration suitable for unit tests and doc examples.
    pub fn small() -> Self {
        DatasetConfig {
            scenes: 10,
            scene: SceneConfig {
                cars: (2, 4),
                pedestrians: (0, 1),
                cyclists: (0, 1),
                ..Default::default()
            },
            lidar: LidarConfig {
                ground_points: 300,
                clutter_points: 20,
                ..Default::default()
            },
            camera: CameraCalib::kitti_small(64, 24),
        }
    }

    /// The evaluation-scale configuration the experiment harness uses.
    pub fn evaluation(scenes: usize) -> Self {
        DatasetConfig {
            scenes,
            scene: SceneConfig::default(),
            lidar: LidarConfig::default(),
            camera: CameraCalib::default(),
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::evaluation(100)
    }
}

/// Scene-index split (80 % train / 10 % val / 10 % test), mirroring the
/// paper's KITTI protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Training scene indices.
    pub train: Vec<usize>,
    /// Validation scene indices (used for compression calibration).
    pub val: Vec<usize>,
    /// Test scene indices (used for reported mAP).
    pub test: Vec<usize>,
}

/// A fully generated dataset: scenes plus on-demand sensor synthesis.
///
/// Scenes are generated eagerly (they are tiny); point clouds and images are
/// synthesized on demand from the same master seed so repeated calls return
/// identical data without storing it.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
    scenes: Vec<Scene>,
    seed: u64,
}

impl Dataset {
    /// Generates a dataset of `config.scenes` scenes from a master seed.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Self {
        let scenes = (0..config.scenes)
            .map(|i| Scene::generate(i, &config.scene, seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Dataset {
            config: config.clone(),
            scenes,
            seed,
        }
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// `true` when the dataset holds no scenes.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// The generation configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The scene with the given index.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn scene(&self, index: usize) -> &Scene {
        &self.scenes[index]
    }

    /// All scenes.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }

    /// Synthesizes (deterministically) the LiDAR sweep for a scene.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn lidar(&self, index: usize) -> PointCloud {
        synthesize(&self.scenes[index], &self.config.lidar, self.seed ^ 0xA5A5)
    }

    /// Renders (deterministically) the camera frame for a scene.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn camera(&self, index: usize) -> CameraImage {
        render(&self.scenes[index], &self.config.camera, self.seed ^ 0x5A5A)
    }

    /// The 80/10/10 split over scene indices.
    ///
    /// Deterministic: scenes are assigned in round-robin blocks so every
    /// split sees the full difficulty distribution.
    pub fn split(&self) -> Split {
        let mut train = Vec::new();
        let mut val = Vec::new();
        let mut test = Vec::new();
        for i in 0..self.scenes.len() {
            match i % 10 {
                8 => val.push(i),
                9 => test.push(i),
                _ => train.push(i),
            }
        }
        Split { train, val, test }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_deterministic() {
        let cfg = DatasetConfig::small();
        let a = Dataset::generate(&cfg, 7);
        let b = Dataset::generate(&cfg, 7);
        assert_eq!(a.scenes(), b.scenes());
        assert_eq!(a.lidar(0), b.lidar(0));
        assert_eq!(a.camera(0).tensor(), b.camera(0).tensor());
    }

    #[test]
    fn scenes_differ_across_indices() {
        let d = Dataset::generate(&DatasetConfig::small(), 7);
        assert_ne!(d.scene(0), d.scene(1));
    }

    #[test]
    fn split_ratios_80_10_10() {
        let cfg = DatasetConfig {
            scenes: 100,
            ..DatasetConfig::small()
        };
        let d = Dataset::generate(&cfg, 0);
        let split = d.split();
        assert_eq!(split.train.len(), 80);
        assert_eq!(split.val.len(), 10);
        assert_eq!(split.test.len(), 10);
        // Disjoint and complete.
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_handles_small_datasets() {
        let cfg = DatasetConfig {
            scenes: 5,
            ..DatasetConfig::small()
        };
        let d = Dataset::generate(&cfg, 0);
        let split = d.split();
        assert_eq!(split.train.len(), 5);
        assert!(split.val.is_empty());
    }

    #[test]
    fn sensors_match_scene_count() {
        let d = Dataset::generate(&DatasetConfig::small(), 3);
        assert_eq!(d.len(), 10);
        assert!(!d.lidar(9).is_empty());
        assert!(d.camera(9).width() > 0);
    }
}
