//! The scenario catalog: named, seed-deterministic workload profiles the
//! scheduling policies are evaluated against.
//!
//! Each [`ScenarioProfile`] bundles a traffic mix (how many cars /
//! pedestrians / cyclists a scene draws), a sensor-degradation setting
//! (rain dropout), an arrival pattern (uniform pacing, rush-hour bursts,
//! adversarial fast/slow alternation) and a per-frame deadline. Every
//! profile is a pure function of its configuration plus whatever seed the
//! caller generates frames with, so two runs of the same scenario are
//! frame-for-frame identical — the property the scenario-matrix test
//! suite and CI assertions rely on.
//!
//! The catalog exists so scheduling policies are measured on more than
//! the historical nominal/overload pair: an energy win that only shows up
//! on one traffic density is not a win, and a safety override that never
//! fires on a VRU-heavy street is not an override.

use crate::dataset::DatasetConfig;
use crate::lidar::LidarConfig;
use crate::scene::SceneConfig;

/// Inter-frame arrival timing of a scenario's source.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// Constant pacing: one frame every `interval_s` seconds.
    Uniform {
        /// Seconds between consecutive frames.
        interval_s: f64,
    },
    /// Rush-hour bursts: `burst` frames arrive `intra_s` apart, then the
    /// source idles `gap_s` before the next burst.
    Burst {
        /// Frames per burst (≥ 1).
        burst: usize,
        /// Seconds between frames inside a burst.
        intra_s: f64,
        /// Idle seconds between bursts.
        gap_s: f64,
    },
    /// Adversarial alternation: the gap after each frame flips between
    /// `fast_s` and `slow_s`, so queue pressure oscillates every frame —
    /// the pattern most likely to whipsaw a reactive-only scheduler.
    Alternating {
        /// Tight gap, seconds.
        fast_s: f64,
        /// Relaxed gap, seconds.
        slow_s: f64,
    },
}

impl ArrivalPattern {
    /// The repeating cycle of inter-frame gaps, seconds. The pipeline
    /// source cycles this list: frame `i` is followed by a sleep of
    /// `cycle[i % cycle.len()]`.
    pub fn cycle(&self) -> Vec<f64> {
        match *self {
            ArrivalPattern::Uniform { interval_s } => vec![interval_s],
            ArrivalPattern::Burst {
                burst,
                intra_s,
                gap_s,
            } => {
                let mut c = vec![intra_s; burst.max(1) - 1];
                c.push(gap_s);
                c
            }
            ArrivalPattern::Alternating { fast_s, slow_s } => vec![fast_s, slow_s],
        }
    }

    /// Mean inter-frame gap over one cycle, seconds.
    pub fn mean_interval_s(&self) -> f64 {
        let c = self.cycle();
        c.iter().sum::<f64>() / c.len() as f64
    }
}

/// One catalog entry: a named workload the policies are evaluated on.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioProfile {
    /// Catalog name (`"urban-vru"`, `"empty-highway"`, …).
    pub name: &'static str,
    /// One-line description for reports and docs.
    pub description: &'static str,
    /// Dataset generation parameters: traffic mix + sensor degradation.
    pub dataset: DatasetConfig,
    /// Source arrival pattern.
    pub arrival: ArrivalPattern,
    /// Per-frame deadline from arrival to detections, seconds.
    pub deadline_s: f64,
}

/// Scenario datasets share a small scene pool: frames cycle it like
/// `bin/stream`, so synthesis stays cheap while every profile still sees
/// several distinct worlds.
const SCENARIO_SCENES: usize = 4;

fn dataset(scene: SceneConfig, lidar: LidarConfig) -> DatasetConfig {
    let mut cfg = DatasetConfig::small();
    cfg.scenes = SCENARIO_SCENES;
    cfg.scene = scene;
    cfg.lidar = lidar;
    cfg
}

fn small_lidar() -> LidarConfig {
    // The mix DatasetConfig::small() uses — keeps scenario frames in the
    // same cost regime as the existing nominal/overload runs.
    LidarConfig {
        ground_points: 300,
        clutter_points: 20,
        ..LidarConfig::default()
    }
}

fn highway_lidar() -> LidarConfig {
    // Open road at speed: the sweep is dominated by long-range misses —
    // a handful of ground returns and almost no clutter, so the active
    // pillar set stays small. This is the regime where the
    // sparse-activation backbone's gather/scatter path pays off
    // (`bench_streaming`'s headline sparse row).
    LidarConfig {
        ground_points: 24,
        clutter_points: 4,
        ..LidarConfig::default()
    }
}

fn sparse_lidar() -> LidarConfig {
    // Dusk-grade return density: the cloud *looks* cheap to a
    // complexity predictor even when the scene is crowded with people —
    // the adversarial input the VRU safety floor exists for.
    LidarConfig {
        ground_points: 120,
        clutter_points: 8,
        ..LidarConfig::default()
    }
}

/// The full scenario catalog, in a fixed, documented order.
pub fn catalog() -> Vec<ScenarioProfile> {
    let mix = |cars, pedestrians, cyclists| SceneConfig {
        cars,
        pedestrians,
        cyclists,
        ..SceneConfig::default()
    };
    vec![
        ScenarioProfile {
            name: "nominal",
            description: "moderate suburban traffic at a steady 30 Hz",
            dataset: dataset(mix((2, 4), (0, 1), (0, 1)), small_lidar()),
            arrival: ArrivalPattern::Uniform { interval_s: 0.033 },
            deadline_s: 0.100,
        },
        ScenarioProfile {
            name: "rush-hour",
            description: "dense mixed traffic arriving in 4-frame bursts",
            dataset: dataset(mix((6, 9), (2, 4), (1, 2)), small_lidar()),
            arrival: ArrivalPattern::Burst {
                burst: 4,
                intra_s: 0.008,
                gap_s: 0.110,
            },
            deadline_s: 0.120,
        },
        ScenarioProfile {
            name: "empty-highway",
            description: "near-empty road, zero vulnerable road users",
            dataset: dataset(mix((0, 1), (0, 0), (0, 0)), highway_lidar()),
            arrival: ArrivalPattern::Uniform { interval_s: 0.050 },
            deadline_s: 0.150,
        },
        ScenarioProfile {
            name: "urban-vru",
            description: "sparse dusk returns over a pedestrian/cyclist-crowded street",
            dataset: dataset(mix((1, 2), (3, 5), (2, 3)), sparse_lidar()),
            arrival: ArrivalPattern::Uniform { interval_s: 0.040 },
            deadline_s: 0.100,
        },
        ScenarioProfile {
            name: "rain-dropout",
            description: "nominal traffic through heavy rain: 55% return dropout, 3x noise",
            dataset: dataset(
                mix((2, 4), (0, 1), (0, 1)),
                LidarConfig {
                    dropout: 0.55,
                    noise_sigma: 0.06,
                    ..small_lidar()
                },
            ),
            arrival: ArrivalPattern::Uniform { interval_s: 0.040 },
            deadline_s: 0.100,
        },
        ScenarioProfile {
            name: "adversarial-deadline",
            description: "alternating 12/90 ms arrivals against a tight 70 ms deadline",
            dataset: dataset(mix((3, 5), (1, 2), (0, 1)), small_lidar()),
            arrival: ArrivalPattern::Alternating {
                fast_s: 0.012,
                slow_s: 0.090,
            },
            deadline_s: 0.070,
        },
    ]
}

/// Looks up a catalog scenario by name.
pub fn by_name(name: &str) -> Option<ScenarioProfile> {
    catalog().into_iter().find(|p| p.name == name)
}

/// Every catalog scenario name, in catalog order.
pub fn names() -> Vec<&'static str> {
    catalog().into_iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn catalog_names_are_unique_and_lookup_works() {
        let all = catalog();
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
        for p in &all {
            assert_eq!(by_name(p.name).as_ref(), Some(p));
            assert!(p.deadline_s > 0.0);
            assert!(p.arrival.mean_interval_s() > 0.0);
            assert!(p.arrival.cycle().iter().all(|&g| g >= 0.0));
        }
        assert!(by_name("no-such-scenario").is_none());
        assert_eq!(super::names().len(), all.len());
    }

    #[test]
    fn arrival_cycles_have_documented_shapes() {
        let u = ArrivalPattern::Uniform { interval_s: 0.05 };
        assert_eq!(u.cycle(), vec![0.05]);
        let b = ArrivalPattern::Burst {
            burst: 4,
            intra_s: 0.01,
            gap_s: 0.1,
        };
        assert_eq!(b.cycle(), vec![0.01, 0.01, 0.01, 0.1]);
        assert!((b.mean_interval_s() - 0.0325).abs() < 1e-12);
        let a = ArrivalPattern::Alternating {
            fast_s: 0.01,
            slow_s: 0.09,
        };
        assert_eq!(a.cycle(), vec![0.01, 0.09]);
        // A single-frame burst degenerates to its gap.
        let single = ArrivalPattern::Burst {
            burst: 1,
            intra_s: 0.01,
            gap_s: 0.2,
        };
        assert_eq!(single.cycle(), vec![0.2]);
    }

    #[test]
    fn scenario_worlds_match_their_advertised_traffic() {
        // Scenario generation is deterministic and the traffic mixes do
        // what the names promise: empty-highway has zero VRUs everywhere,
        // urban-vru has several in every scene.
        let empty = by_name("empty-highway").unwrap();
        let urban = by_name("urban-vru").unwrap();
        let a = Dataset::generate(&empty.dataset, 11);
        let b = Dataset::generate(&empty.dataset, 11);
        for (x, y) in a.scenes().iter().zip(b.scenes()) {
            assert_eq!(x, y, "scenario worlds must be seed-deterministic");
            assert_eq!(x.vru_count(), 0, "empty-highway leaked a VRU");
        }
        let d = Dataset::generate(&urban.dataset, 11);
        for scene in d.scenes() {
            assert!(scene.vru_count() >= 5, "urban-vru scene too quiet");
        }
    }

    #[test]
    fn rain_dropout_thins_sweeps_vs_nominal() {
        let nominal = by_name("nominal").unwrap();
        let rain = by_name("rain-dropout").unwrap();
        let dry = Dataset::generate(&nominal.dataset, 3);
        let wet = Dataset::generate(&rain.dataset, 3);
        let dry_points: usize = (0..dry.len()).map(|i| dry.lidar(i).len()).sum();
        let wet_points: usize = (0..wet.len()).map(|i| wet.lidar(i).len()).sum();
        assert!(
            wet_points * 3 < dry_points * 2,
            "rain should shed well over a third of returns: {wet_points} vs {dry_points}"
        );
    }
}
