//! Property-based tests for the UPAQ compression invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use upaq::one_by_one::apply_virtual_pattern;
use upaq::pattern::{generate_pattern, pattern_of_kind, PatternKind};
use upaq::quantizer::mp_quantizer;
use upaq_tensor::{Shape, Tensor};

proptest! {
    #[test]
    fn pattern_always_n_positions_in_bounds(n in 1usize..6, d in 2usize..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = generate_pattern(n, d, &mut rng);
        prop_assert_eq!(p.nonzeros(), n.min(d));
        for &(r, c) in p.positions() {
            prop_assert!(r < d && c < d);
        }
    }

    #[test]
    fn quantizer_never_increases_abs_max(data in prop::collection::vec(-5.0f32..5.0, 9..64), bits in 4u8..=16) {
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let q = mp_quantizer(&t, bits).unwrap();
        prop_assert!(q.kernel.abs_max() <= t.abs_max() * 1.001);
    }

    #[test]
    fn quantizer_preserves_zeros(data in prop::collection::vec(-1.0f32..1.0, 9..32), bits in 4u8..=16) {
        let mut data = data;
        data[0] = 0.0;
        data[3] = 0.0;
        let t = Tensor::from_vec(Shape::vector(data.len()), data).unwrap();
        let q = mp_quantizer(&t, bits).unwrap();
        prop_assert_eq!(q.kernel.as_slice()[0], 0.0);
        prop_assert_eq!(q.kernel.as_slice()[3], 0.0);
    }

    #[test]
    fn virtual_pattern_sparsity_matches(n in 1usize..4, len in 9usize..100, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pattern = pattern_of_kind(PatternKind::MainDiagonal, n, 3, &mut rng);
        let weights = Tensor::full(Shape::nchw(len, 1, 1, 1), 1.0);
        let masked = apply_virtual_pattern(&weights, &pattern);
        // Full chunks keep exactly n weights each; the ragged tail is zeroed.
        let full_chunks = len / 9;
        prop_assert_eq!(masked.count_nonzero(), full_chunks * n.min(3));
    }

    #[test]
    fn sqnr_positive_for_nondegenerate_kernels(data in prop::collection::vec(0.1f32..1.0, 9..=9), bits in 4u8..=8) {
        let t = Tensor::from_vec(Shape::vector(9), data).unwrap();
        let q = mp_quantizer(&t, bits).unwrap();
        prop_assert!(q.sqnr > 0.0);
    }
}
