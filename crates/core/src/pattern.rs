//! Pattern generator — **Algorithm 2** of the paper.
//!
//! Generates a random arrangement of `n` non-zero positions inside a `d × d`
//! kernel from one of four families: main diagonal, anti-diagonal, a run
//! within a random row, or a run within a random column. The paper argues
//! this on-the-fly generator reaches better compression than a fixed
//! pattern dictionary (the R-TOSS approach) because the mask is adapted per
//! root group by the efficiency-score search.

use rand::Rng;
use serde::{Deserialize, Serialize};
use upaq_tensor::sparse::KernelMask;

/// The four pattern families of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Positions `(i, i)`.
    MainDiagonal,
    /// Positions `(i, d−1−i)`.
    AntiDiagonal,
    /// A horizontal run inside one row.
    Row,
    /// A vertical run inside one column.
    Column,
}

impl PatternKind {
    /// All families, in the paper's listing order.
    pub const ALL: [PatternKind; 4] = [
        PatternKind::MainDiagonal,
        PatternKind::AntiDiagonal,
        PatternKind::Row,
        PatternKind::Column,
    ];
}

/// A generated kernel pattern: the family plus the concrete non-zero
/// positions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    kind: PatternKind,
    dim: usize,
    positions: Vec<(usize, usize)>,
}

impl Pattern {
    /// The family this pattern was drawn from.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// Kernel side length `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The non-zero positions.
    pub fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }

    /// Number of non-zero positions.
    pub fn nonzeros(&self) -> usize {
        self.positions.len()
    }

    /// The keep-mask this pattern induces.
    pub fn mask(&self) -> KernelMask {
        KernelMask::from_positions(self.dim, &self.positions)
    }
}

/// Generates one random pattern with `n` non-zeros in a `d × d` kernel —
/// Algorithm 2 verbatim: pick a family uniformly, then place the run.
///
/// `n` is clamped to `d` (diagonals and runs cannot exceed the kernel side;
/// the paper's `min(n, d)` does the same for diagonals).
///
/// # Panics
///
/// Panics when `d == 0` or `n == 0`.
pub fn generate_pattern(n: usize, d: usize, rng: &mut impl Rng) -> Pattern {
    generate_pattern_from(&PatternKind::ALL, n, d, rng)
}

/// Like [`generate_pattern`] but drawing the family from a restricted list
/// (the pattern-family ablation).
///
/// # Panics
///
/// Panics when `d == 0`, `n == 0`, or `kinds` is empty.
pub fn generate_pattern_from(
    kinds: &[PatternKind],
    n: usize,
    d: usize,
    rng: &mut impl Rng,
) -> Pattern {
    assert!(d > 0 && n > 0, "pattern needs d > 0 and n > 0");
    assert!(!kinds.is_empty(), "pattern family list must not be empty");
    let kind = kinds[rng.gen_range(0..kinds.len())];
    pattern_of_kind(kind, n, d, rng)
}

/// Generates a pattern of a specific family (the ablation benches sweep
/// families individually).
///
/// # Panics
///
/// Panics when `d == 0` or `n == 0`.
pub fn pattern_of_kind(kind: PatternKind, n: usize, d: usize, rng: &mut impl Rng) -> Pattern {
    assert!(d > 0 && n > 0, "pattern needs d > 0 and n > 0");
    let n = n.min(d);
    let positions = match kind {
        PatternKind::MainDiagonal => (0..n).map(|i| (i, i)).collect(),
        PatternKind::AntiDiagonal => (0..n).map(|i| (i, d - i - 1)).collect(),
        PatternKind::Row => {
            let row = rng.gen_range(0..d);
            let start_col = rng.gen_range(0..=(d - n));
            (0..n).map(|i| (row, start_col + i)).collect()
        }
        PatternKind::Column => {
            let col = rng.gen_range(0..d);
            let start_row = rng.gen_range(0..=(d - n));
            (0..n).map(|i| (start_row + i, col)).collect()
        }
    };
    Pattern {
        kind,
        dim: d,
        positions,
    }
}

/// Draws up to `count` *distinct* random patterns — the candidate set the
/// compression stage scores with `E_s`.
pub fn generate_candidates(n: usize, d: usize, count: usize, rng: &mut impl Rng) -> Vec<Pattern> {
    generate_candidates_from(&PatternKind::ALL, n, d, count, rng)
}

/// Like [`generate_candidates`] but restricted to the given families.
pub fn generate_candidates_from(
    kinds: &[PatternKind],
    n: usize,
    d: usize,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<Pattern> {
    let mut out: Vec<Pattern> = Vec::with_capacity(count);
    // Distinct patterns for small (n, d) are limited; bound the attempts.
    for _ in 0..count * 8 {
        if out.len() == count {
            break;
        }
        let p = generate_pattern_from(kinds, n, d, rng);
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exact_nonzero_count() {
        let mut r = rng(1);
        for n in 1..=3 {
            for _ in 0..20 {
                let p = generate_pattern(n, 3, &mut r);
                assert_eq!(p.nonzeros(), n);
            }
        }
    }

    #[test]
    fn positions_inside_kernel() {
        let mut r = rng(2);
        for _ in 0..100 {
            let p = generate_pattern(3, 5, &mut r);
            for &(row, col) in p.positions() {
                assert!(row < 5 && col < 5);
            }
        }
    }

    #[test]
    fn n_clamped_to_dim() {
        let mut r = rng(3);
        let p = generate_pattern(9, 3, &mut r);
        assert_eq!(p.nonzeros(), 3);
    }

    #[test]
    fn families_shape_correctly() {
        let mut r = rng(4);
        let main = pattern_of_kind(PatternKind::MainDiagonal, 3, 3, &mut r);
        assert_eq!(main.positions(), &[(0, 0), (1, 1), (2, 2)]);
        let anti = pattern_of_kind(PatternKind::AntiDiagonal, 3, 3, &mut r);
        assert_eq!(anti.positions(), &[(0, 2), (1, 1), (2, 0)]);
        let row = pattern_of_kind(PatternKind::Row, 2, 3, &mut r);
        let rows: Vec<usize> = row.positions().iter().map(|p| p.0).collect();
        assert!(
            rows.windows(2).all(|w| w[0] == w[1]),
            "row pattern spans one row"
        );
        let col = pattern_of_kind(PatternKind::Column, 2, 3, &mut r);
        let cols: Vec<usize> = col.positions().iter().map(|p| p.1).collect();
        assert!(
            cols.windows(2).all(|w| w[0] == w[1]),
            "column pattern spans one column"
        );
    }

    #[test]
    fn row_runs_are_contiguous() {
        let mut r = rng(5);
        for _ in 0..50 {
            let p = pattern_of_kind(PatternKind::Row, 2, 4, &mut r);
            let cols: Vec<usize> = p.positions().iter().map(|q| q.1).collect();
            assert_eq!(cols[1], cols[0] + 1);
        }
    }

    #[test]
    fn mask_matches_positions() {
        let mut r = rng(6);
        let p = generate_pattern(2, 3, &mut r);
        let mask = p.mask();
        assert_eq!(mask.kept(), 2);
        for &(row, col) in p.positions() {
            assert!(mask.is_kept(row, col));
        }
    }

    #[test]
    fn candidates_distinct() {
        let mut r = rng(7);
        let cands = generate_candidates(2, 3, 6, &mut r);
        for (i, a) in cands.iter().enumerate() {
            for b in cands.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert!(!cands.is_empty());
    }

    #[test]
    fn generation_deterministic_per_seed() {
        let a = generate_pattern(2, 3, &mut rng(9));
        let b = generate_pattern(2, 3, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn rejects_zero_nonzeros() {
        let _ = generate_pattern(0, 3, &mut rng(0));
    }
}
