//! UPAQ configuration and the paper's HCK / LCK presets.

use crate::pattern::PatternKind;
use crate::{Result, UpaqError};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the UPAQ compression pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpaqConfig {
    /// Human-readable variant label (shows up in reports).
    pub label: String,
    /// Non-zero weights kept per k×k kernel pattern.
    pub nonzeros: usize,
    /// Candidate quantization bitwidths the mixed-precision search sweeps
    /// (paper: 4–16).
    pub quant_bits: Vec<u8>,
    /// Efficiency-score weight on SQNR (paper α = 0.3).
    pub alpha: f64,
    /// Efficiency-score weight on inverse latency (paper β = 0.4).
    pub beta: f64,
    /// Efficiency-score weight on inverse energy (paper γ = 0.3).
    pub gamma: f64,
    /// Random candidate patterns drawn per root group.
    pub patterns_per_group: usize,
    /// Virtual kernel side used by the 1×1 transformation (Algorithm 5).
    pub virtual_kernel: usize,
    /// Pattern families the generator may draw from (ablations restrict
    /// this; the paper's full generator uses all four).
    pub pattern_kinds: Vec<PatternKind>,
    /// Whether 1×1 kernels are transformed and compressed (Algorithm 5).
    /// Disabling this reproduces the "traditional methods that fix the
    /// values of these 1×1 convolutional layers" the paper argues against.
    pub compress_pointwise: bool,
    /// Pattern-generation seed.
    pub seed: u64,
}

impl UpaqConfig {
    /// **HCK** — biased toward higher compression: 2 non-zeros per 3×3
    /// kernel, aggressive 4/8-bit mixed precision (paper §V-A).
    pub fn hck() -> Self {
        UpaqConfig {
            label: "UPAQ (HCK)".into(),
            nonzeros: 2,
            quant_bits: vec![4, 8],
            alpha: 0.3,
            beta: 0.4,
            gamma: 0.3,
            patterns_per_group: 8,
            virtual_kernel: 3,
            pattern_kinds: PatternKind::ALL.to_vec(),
            compress_pointwise: true,
            seed: 0x0075_4151,
        }
    }

    /// **LCK** — biased toward accuracy: 3 non-zeros per 3×3 kernel, gentler
    /// 8/16-bit mixed precision (paper §V-A).
    pub fn lck() -> Self {
        UpaqConfig {
            label: "UPAQ (LCK)".into(),
            nonzeros: 3,
            quant_bits: vec![8, 16],
            ..UpaqConfig::hck()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`UpaqError::BadConfig`] for empty bit lists, zero pattern
    /// budgets, zero non-zeros, weights outside `[0, 1]`, or a virtual
    /// kernel smaller than 2.
    pub fn validate(&self) -> Result<()> {
        if self.nonzeros == 0 {
            return Err(UpaqError::BadConfig("nonzeros must be ≥ 1".into()));
        }
        if self.quant_bits.is_empty() {
            return Err(UpaqError::BadConfig("quant_bits must not be empty".into()));
        }
        if self.patterns_per_group == 0 {
            return Err(UpaqError::BadConfig(
                "patterns_per_group must be ≥ 1".into(),
            ));
        }
        if self.virtual_kernel < 2 {
            return Err(UpaqError::BadConfig("virtual_kernel must be ≥ 2".into()));
        }
        if self.pattern_kinds.is_empty() {
            return Err(UpaqError::BadConfig(
                "pattern_kinds must not be empty".into(),
            ));
        }
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("gamma", self.gamma),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(UpaqError::BadConfig(format!(
                    "{name} must be in [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for UpaqConfig {
    fn default() -> Self {
        UpaqConfig::lck()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let hck = UpaqConfig::hck();
        assert_eq!(hck.nonzeros, 2);
        assert_eq!(hck.quant_bits, vec![4, 8]);
        let lck = UpaqConfig::lck();
        assert_eq!(lck.nonzeros, 3);
        assert_eq!(lck.quant_bits, vec![8, 16]);
        // Paper's score weights: α=0.3, β=0.4, γ=0.3.
        assert_eq!((lck.alpha, lck.beta, lck.gamma), (0.3, 0.4, 0.3));
        assert!(hck.validate().is_ok());
        assert!(lck.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = UpaqConfig::hck();
        c.nonzeros = 0;
        assert!(c.validate().is_err());

        let mut c = UpaqConfig::hck();
        c.quant_bits.clear();
        assert!(c.validate().is_err());

        let mut c = UpaqConfig::hck();
        c.alpha = 1.5;
        assert!(c.validate().is_err());

        let mut c = UpaqConfig::hck();
        c.virtual_kernel = 1;
        assert!(c.validate().is_err());
    }
}
