use std::fmt;
use upaq_nn::NnError;
use upaq_tensor::TensorError;

/// Errors produced by the UPAQ compression pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum UpaqError {
    /// A configuration value was invalid (message explains which).
    BadConfig(String),
    /// An underlying model/graph operation failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The model has no compressible (weighted) layers.
    NothingToCompress,
}

impl fmt::Display for UpaqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpaqError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            UpaqError::Nn(e) => write!(f, "model error: {e}"),
            UpaqError::Tensor(e) => write!(f, "tensor error: {e}"),
            UpaqError::NothingToCompress => write!(f, "model has no weighted layers"),
        }
    }
}

impl std::error::Error for UpaqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpaqError::Nn(e) => Some(e),
            UpaqError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for UpaqError {
    fn from(e: NnError) -> Self {
        UpaqError::Nn(e)
    }
}

impl From<TensorError> for UpaqError {
    fn from(e: TensorError) -> Self {
        UpaqError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: UpaqError = NnError::CyclicGraph.into();
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        let t: UpaqError = TensorError::UnsupportedBitwidth(1).into();
        assert!(t.to_string().contains("tensor error"));
        assert!(UpaqError::NothingToCompress.source().is_none());
    }
}
