//! 1×1 kernel transformation and compression — **Algorithm 5** of the
//! paper.
//!
//! 1×1 convolutions are abundant in pointcloud detectors (the Pillar
//! Feature Network is built from them) yet have no spatial structure for a
//! pattern to grip. Algorithm 5 therefore *transforms* them: flatten the
//! layer's 1×1 weights, regroup consecutive runs of `k²` values into
//! virtual `k × k` kernels, prune those with a generated pattern, quantize,
//! and flatten back. A ragged tail shorter than `k²` is zeroed, exactly as
//! the paper's pseudocode does (`temp_array.append(t1=0)`).

use crate::config::UpaqConfig;
use crate::kxk::KernelChoice;
use crate::pattern::{generate_candidates_from, Pattern};
use crate::score::ScoreContext;
use crate::{Result, UpaqError};
use rand::rngs::StdRng;
use std::collections::HashMap;
use upaq_hwmodel::exec::{BitAllocation, SparsityKind};
use upaq_nn::{LayerId, Model};
use upaq_tensor::Tensor;

/// Applies a virtual-kernel pattern to a flattened weight tensor: each
/// consecutive run of `dim²` weights is treated as a row-major `dim × dim`
/// kernel and masked by `pattern`; any ragged tail is zeroed.
///
/// Returns a tensor with the original shape.
pub fn apply_virtual_pattern(weights: &Tensor, pattern: &Pattern) -> Tensor {
    let k = pattern.dim();
    let k2 = k * k;
    let mask = pattern.mask();
    let mut out = weights.clone();
    let data = out.as_mut_slice();
    let full_chunks = data.len() / k2;
    for chunk in 0..full_chunks {
        let base = chunk * k2;
        for j in 0..k2 {
            if !mask.is_kept(j / k, j % k) {
                data[base + j] = 0.0;
            }
        }
    }
    // Ragged tail: Algorithm 5 line 12 zeroes incomplete groups.
    for v in data.iter_mut().skip(full_chunks * k2) {
        *v = 0.0;
    }
    out
}

fn mask_and_quantize_1x1(weights: &Tensor, pattern: &Pattern, bits: u8) -> Result<(Tensor, f32)> {
    // Per-virtual-kernel rescale + quantization, matching Algorithm 5's
    // per-chunk `mp_quantizer` calls and the paper's "dynamically adjusting
    // the 1×1 kernel weights" (see the notes in `kxk`).
    let k2 = pattern.dim() * pattern.dim();
    let mut rescaled = apply_virtual_pattern(weights, pattern);
    {
        let data = rescaled.as_mut_slice();
        let orig = weights.as_slice();
        for (chunk, orig_chunk) in data.chunks_mut(k2).zip(orig.chunks(k2)) {
            crate::kxk::rescale_chunk(chunk, orig_chunk);
        }
    }
    let mut out = rescaled.clone();
    {
        let data = out.as_mut_slice();
        for chunk in data.chunks_mut(k2) {
            crate::kxk::quantize_chunk(chunk, bits)?;
        }
    }
    let sqnr = upaq_tensor::quant::sqnr(&rescaled, &out)?;
    Ok((out, sqnr))
}

/// Algorithm 5 over a root group of 1×1 convolutions (or linear layers):
/// mutates `model`'s group weights to the best `(pattern, bits)` candidate
/// and records the allocation for every member.
///
/// # Errors
///
/// Returns [`UpaqError::BadConfig`] when no candidate could be scored, and
/// propagates tensor/model errors.
#[allow(clippy::too_many_arguments)]
pub fn compress_1x1_group(
    model: &mut Model,
    members: &[LayerId],
    config: &UpaqConfig,
    ctx: &ScoreContext,
    bits_alloc: &mut BitAllocation,
    kinds: &mut HashMap<LayerId, SparsityKind>,
    rng: &mut StdRng,
) -> Result<KernelChoice> {
    let root = members[0];
    let originals: HashMap<LayerId, Tensor> = members
        .iter()
        .map(|&id| {
            let w = model
                .layer(id)
                .expect("valid id")
                .weights()
                .expect("weighted")
                .clone();
            (id, w)
        })
        .collect();

    let k = config.virtual_kernel;
    let candidates = generate_candidates_from(
        &config.pattern_kinds,
        config.nonzeros,
        k,
        config.patterns_per_group,
        rng,
    );
    let mut best: Option<KernelChoice> = None;

    for pattern in &candidates {
        for &bits in &config.quant_bits {
            let mut root_sqnr = f32::INFINITY;
            for &id in members {
                let (restored, sqnr) = mask_and_quantize_1x1(&originals[&id], pattern, bits)?;
                if id == root {
                    root_sqnr = sqnr;
                }
                model.layer_mut(id)?.set_weights(restored);
            }
            let mut cand_bits = bits_alloc.clone();
            let mut cand_kinds = kinds.clone();
            for &id in members {
                cand_bits.insert(id, bits);
                cand_kinds.insert(id, SparsityKind::SemiStructured);
            }
            let est = ctx.estimate_candidate(model, &cand_bits, &cand_kinds)?;
            let score = ctx.efficiency_score(root_sqnr, &est);
            if best.as_ref().is_none_or(|b| score > b.score) {
                best = Some(KernelChoice {
                    pattern: pattern.clone(),
                    bits,
                    score,
                    sqnr: root_sqnr,
                });
            }
        }
    }

    let choice = best.ok_or_else(|| UpaqError::BadConfig("no candidates scored".into()))?;
    for &id in members {
        let (restored, _) = mask_and_quantize_1x1(&originals[&id], &choice.pattern, choice.bits)?;
        model.layer_mut(id)?.set_weights(restored);
        bits_alloc.insert(id, choice.bits);
        kinds.insert(id, SparsityKind::SemiStructured);
    }
    Ok(choice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::pattern_of_kind;
    use crate::pattern::PatternKind;
    use rand::SeedableRng;
    use upaq_hwmodel::DeviceProfile;
    use upaq_nn::Layer;
    use upaq_tensor::Shape;

    #[test]
    fn virtual_pattern_masks_chunks() {
        // 18 weights = two full 3×3 virtual kernels.
        let w = Tensor::from_vec(
            Shape::nchw(18, 1, 1, 1),
            (1..=18).map(|i| i as f32).collect(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = pattern_of_kind(PatternKind::MainDiagonal, 3, 3, &mut rng);
        let out = apply_virtual_pattern(&w, &p);
        // Diagonal of a row-major 3×3 keeps flat indices 0, 4, 8 per chunk.
        let kept: Vec<usize> = out
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept, vec![0, 4, 8, 9, 13, 17]);
    }

    #[test]
    fn ragged_tail_zeroed() {
        // 11 weights: one full 3×3 chunk + 2-weight tail (zeroed).
        let w = Tensor::from_vec(Shape::nchw(11, 1, 1, 1), vec![1.0; 11]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let p = pattern_of_kind(PatternKind::MainDiagonal, 3, 3, &mut rng);
        let out = apply_virtual_pattern(&w, &p);
        assert_eq!(out.as_slice()[9], 0.0);
        assert_eq!(out.as_slice()[10], 0.0);
        assert_eq!(out.count_nonzero(), 3);
    }

    #[test]
    fn compresses_pfn_style_group() {
        let mut m = Model::new("pfn");
        let input = m.add_input("in", 9);
        let c1 = m
            .add_layer(Layer::conv2d("pfn0", 9, 16, 1, 1, 0, 1), &[input])
            .unwrap();
        m.add_layer(Layer::conv2d("pfn1", 16, 16, 1, 1, 0, 2), &[c1])
            .unwrap();
        let mut shapes = HashMap::new();
        shapes.insert("in".to_string(), Shape::nchw(1, 9, 8, 8));
        let ctx = ScoreContext::new(DeviceProfile::jetson_orin_nano(), shapes, &m, 0.3, 0.4, 0.3)
            .unwrap();
        let groups = upaq_nn::group::preprocess(&m);
        let members = groups.members(groups.roots()[0]).unwrap().to_vec();
        assert_eq!(members.len(), 2);
        let mut bits = BitAllocation::new();
        let mut kinds = HashMap::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = UpaqConfig::lck();
        let choice = compress_1x1_group(
            &mut m, &members, &cfg, &ctx, &mut bits, &mut kinds, &mut rng,
        )
        .unwrap();
        assert!(cfg.quant_bits.contains(&choice.bits));
        // Sparsity near 1 − n/k² (up to the ragged tail).
        for &id in &members {
            let w = m.layer(id).unwrap().weights().unwrap();
            let sparsity = w.sparsity();
            let expected = 1.0 - cfg.nonzeros as f32 / 9.0;
            assert!(
                (sparsity - expected).abs() < 0.1,
                "sparsity {sparsity} far from {expected}"
            );
        }
    }

    #[test]
    fn dynamic_adjustment_beats_naive_fixed_quantization() {
        // The paper's motivation for Algorithm 5: naively quantizing 1×1
        // layers at the most aggressive bitwidth hurts; the E_s search keeps
        // more fidelity when SQNR matters. With α=1 (pure SQNR weighting)
        // the search must pick the highest bitwidth.
        let mut m = Model::new("pfn");
        let input = m.add_input("in", 9);
        m.add_layer(Layer::conv2d("pfn0", 9, 16, 1, 1, 0, 1), &[input])
            .unwrap();
        let mut shapes = HashMap::new();
        shapes.insert("in".to_string(), Shape::nchw(1, 9, 8, 8));
        let ctx = ScoreContext::new(DeviceProfile::jetson_orin_nano(), shapes, &m, 1.0, 0.0, 0.0)
            .unwrap();
        let mut bits = BitAllocation::new();
        let mut kinds = HashMap::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = UpaqConfig {
            quant_bits: vec![4, 16],
            ..UpaqConfig::lck()
        };
        let choice =
            compress_1x1_group(&mut m, &[1], &cfg, &ctx, &mut bits, &mut kinds, &mut rng).unwrap();
        assert_eq!(choice.bits, 16, "pure-SQNR weighting must choose 16-bit");
    }
}
