//! Packed compressed-model artifacts: the actual bytes a deployment ships.
//!
//! The compression ratios in Table 2 are statements about *stored size*.
//! [`crate::compress::CompressionReport`] estimates them analytically; this
//! module validates the claim end-to-end by genuinely serializing a
//! compressed model — bit-packed integer codes, one f32 scale per (virtual)
//! kernel, per-kernel pattern masks — and deserializing it back to
//! bit-exact weights.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "UPAQ"  u32 version  u32 layer_count
//! per weighted layer:
//!   u32 layer_id   u8 kind   u8 bits   u32 weight_len
//!   payload:
//!     kind 0 dense-fp32:      weight_len × f32
//!     kind 1 dense-quant:     f32 scale, packed codes (weight_len × bits)
//!     kind 2 pattern-kernels: per 9-weight kernel: u16 mask, f32 scale,
//!                             packed codes for the mask's survivors
//!     kind 3 sparse-coo:      u32 nnz, then nnz × (u32 index, f32 value)
//! ```
//!
//! The bias vectors and unweighted layers travel with the model
//! architecture, which the unpacker receives as a template — exactly how a
//! deployment pairs an engine definition with a weight blob.

use crate::{Result, UpaqError};
use std::collections::HashMap;
use upaq_hwmodel::exec::{BitAllocation, SparsityKind};
use upaq_nn::{LayerId, Model};
use upaq_tensor::Tensor;

const MAGIC: &[u8; 4] = b"UPAQ";
const VERSION: u32 = 1;
/// Kernel granule for pattern-packed layers (the 3×3 virtual kernel of
/// Algorithms 4/5).
const GRANULE: usize = 9;

/// A serialized compressed model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedModel {
    bytes: Vec<u8>,
}

impl PackedModel {
    /// The raw artifact bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Artifact size in bytes — the number the compression ratio is about.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for an empty artifact (never produced by [`pack`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Little-endian byte writer with a bit-packing lane.
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { bytes: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    /// Packs signed codes at `bits` bits each (two's complement), padded to
    /// a byte boundary.
    fn codes(&mut self, codes: &[i32], bits: u8) {
        let bits = bits as u32;
        let mut acc: u64 = 0;
        let mut filled: u32 = 0;
        for &c in codes {
            let mask = (1u64 << bits) - 1;
            acc |= ((c as u64) & mask) << filled;
            filled += bits;
            while filled >= 8 {
                self.bytes.push((acc & 0xFF) as u8);
                acc >>= 8;
                filled -= 8;
            }
        }
        if filled > 0 {
            self.bytes.push((acc & 0xFF) as u8);
        }
    }
}

/// Little-endian byte reader mirroring [`Writer`].
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(UpaqError::BadConfig("artifact truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    /// Unpacks `count` signed codes at `bits` bits each.
    fn codes(&mut self, count: usize, bits: u8) -> Result<Vec<i32>> {
        let total_bits = count * bits as usize;
        let bytes = self.take(total_bits.div_ceil(8))?;
        let mut out = Vec::with_capacity(count);
        let mut acc: u64 = 0;
        let mut filled: u32 = 0;
        let mut idx = 0usize;
        let bits_u = bits as u32;
        for _ in 0..count {
            while filled < bits_u {
                acc |= (bytes[idx] as u64) << filled;
                idx += 1;
                filled += 8;
            }
            let raw = (acc & ((1u64 << bits_u) - 1)) as u32;
            acc >>= bits_u;
            filled -= bits_u;
            // Sign-extend.
            let sign_bit = 1u32 << (bits_u - 1);
            let value = if raw & sign_bit != 0 {
                (raw | !((1u32 << bits_u) - 1)) as i32
            } else {
                raw as i32
            };
            out.push(value);
        }
        Ok(out)
    }
}

fn quantize_codes(values: &[f32], bits: u8) -> (f32, Vec<i32>) {
    let max_value = ((1i32 << (bits - 1)) - 1) as f32;
    let alpha = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if alpha == 0.0 { 1.0 } else { alpha / max_value };
    let codes = values
        .iter()
        .map(|&v| ((v / scale).round() as i32).clamp(-(max_value as i32), max_value as i32))
        .collect();
    (scale, codes)
}

/// Serializes a compressed model's weights under the given allocations.
///
/// # Errors
///
/// Returns [`UpaqError::BadConfig`] for unsupported bitwidths.
pub fn pack(
    model: &Model,
    bits: &BitAllocation,
    kinds: &HashMap<LayerId, SparsityKind>,
) -> Result<PackedModel> {
    let mut w = Writer::new();
    w.bytes.extend_from_slice(MAGIC);
    w.u32(VERSION);
    let weighted = model.weighted_layers();
    w.u32(weighted.len() as u32);

    for id in weighted {
        let layer = model.layer(id)?;
        let weights = layer.weights().expect("weighted layer");
        let layer_bits = bits.get(&id).copied().unwrap_or(32);
        let kind = kinds.get(&id).copied().unwrap_or(SparsityKind::Dense);
        if layer_bits < 32 && !(2..=16).contains(&layer_bits) {
            return Err(UpaqError::BadConfig(format!(
                "unsupported bits {layer_bits}"
            )));
        }

        w.u32(id as u32);
        let data = weights.as_slice();
        match (kind, layer_bits) {
            (SparsityKind::SemiStructured, b) if b < 32 => {
                w.u8(2);
                w.u8(b);
                w.u32(data.len() as u32);
                for kernel in data.chunks(GRANULE) {
                    let mut mask: u16 = 0;
                    let mut kept = Vec::new();
                    for (i, &v) in kernel.iter().enumerate() {
                        if v != 0.0 {
                            mask |= 1 << i;
                            kept.push(v);
                        }
                    }
                    w.u16(mask);
                    let (scale, codes) = quantize_codes(&kept, b);
                    w.f32(scale);
                    w.codes(&codes, b);
                }
            }
            (
                SparsityKind::Unstructured
                | SparsityKind::SemiStructured
                | SparsityKind::Structured,
                32,
            ) => {
                // fp32 sparse: coordinate list.
                w.u8(3);
                w.u8(32);
                w.u32(data.len() as u32);
                let nnz = data.iter().filter(|&&v| v != 0.0).count();
                w.u32(nnz as u32);
                for (i, &v) in data.iter().enumerate() {
                    if v != 0.0 {
                        w.u32(i as u32);
                        w.f32(v);
                    }
                }
            }
            (SparsityKind::Unstructured, b) => {
                // Quantized sparse: indices + per-layer scale + codes.
                w.u8(3);
                w.u8(b);
                w.u32(data.len() as u32);
                let entries: Vec<(usize, f32)> = data
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i, v))
                    .collect();
                w.u32(entries.len() as u32);
                for &(i, _) in &entries {
                    w.u32(i as u32);
                }
                let values: Vec<f32> = entries.iter().map(|&(_, v)| v).collect();
                let (scale, codes) = quantize_codes(&values, b);
                w.f32(scale);
                w.codes(&codes, b);
            }
            (SparsityKind::Dense | SparsityKind::Structured, b) if b < 32 => {
                w.u8(1);
                w.u8(b);
                w.u32(data.len() as u32);
                let (scale, codes) = quantize_codes(data, b);
                w.f32(scale);
                w.codes(&codes, b);
            }
            _ => {
                w.u8(0);
                w.u8(32);
                w.u32(data.len() as u32);
                for &v in data {
                    w.f32(v);
                }
            }
        }
    }
    Ok(PackedModel { bytes: w.bytes })
}

/// Restores the packed weights into a copy of `template` (which must share
/// the packed model's architecture).
///
/// # Errors
///
/// Returns [`UpaqError::BadConfig`] for corrupt artifacts or layer-shape
/// mismatches.
pub fn unpack(packed: &PackedModel, template: &Model) -> Result<Model> {
    let mut r = Reader::new(&packed.bytes);
    if r.take(4)? != MAGIC {
        return Err(UpaqError::BadConfig("bad artifact magic".into()));
    }
    if r.u32()? != VERSION {
        return Err(UpaqError::BadConfig("unsupported artifact version".into()));
    }
    let layer_count = r.u32()? as usize;
    let mut model = template.deep_copy();
    for _ in 0..layer_count {
        let id = r.u32()? as usize;
        let kind = r.u8()?;
        let bits = r.u8()?;
        let len = r.u32()? as usize;
        let current_shape = {
            let layer = model.layer(id)?;
            let w = layer
                .weights()
                .ok_or_else(|| UpaqError::BadConfig(format!("layer {id} has no weights")))?;
            if w.len() != len {
                return Err(UpaqError::BadConfig(format!(
                    "layer {id}: artifact has {len} weights, template {}",
                    w.len()
                )));
            }
            w.shape().clone()
        };
        let mut data = vec![0.0f32; len];
        match kind {
            0 => {
                for v in &mut data {
                    *v = r.f32()?;
                }
            }
            1 => {
                let scale = r.f32()?;
                let codes = r.codes(len, bits)?;
                for (v, c) in data.iter_mut().zip(codes) {
                    *v = c as f32 * scale;
                }
            }
            2 => {
                for kernel in data.chunks_mut(GRANULE) {
                    let mask = r.u16()?;
                    let scale = r.f32()?;
                    let nnz = mask.count_ones() as usize;
                    let codes = r.codes(nnz, bits)?;
                    let mut ci = 0;
                    for (i, v) in kernel.iter_mut().enumerate() {
                        if mask & (1 << i) != 0 {
                            *v = codes[ci] as f32 * scale;
                            ci += 1;
                        }
                    }
                }
            }
            3 => {
                let nnz = r.u32()? as usize;
                if bits == 32 {
                    for _ in 0..nnz {
                        let i = r.u32()? as usize;
                        let v = r.f32()?;
                        *data
                            .get_mut(i)
                            .ok_or_else(|| UpaqError::BadConfig("index out of range".into()))? = v;
                    }
                } else {
                    let indices: Vec<usize> = (0..nnz)
                        .map(|_| r.u32().map(|v| v as usize))
                        .collect::<Result<_>>()?;
                    let scale = r.f32()?;
                    let codes = r.codes(nnz, bits)?;
                    for (&i, c) in indices.iter().zip(codes) {
                        *data
                            .get_mut(i)
                            .ok_or_else(|| UpaqError::BadConfig("index out of range".into()))? =
                            c as f32 * scale;
                    }
                }
            }
            other => return Err(UpaqError::BadConfig(format!("unknown layer kind {other}"))),
        }
        let tensor = Tensor::from_vec(current_shape, data)?;
        model.layer_mut(id)?.set_weights(tensor);
    }
    Ok(model)
}

/// Size in bytes of the dense fp32 artifact of the same model — the
/// denominator of a *measured* compression ratio.
pub fn dense_size_bytes(model: &Model) -> usize {
    let header = 4 + 4 + 4;
    let per_layer = 4 + 1 + 1 + 4;
    model
        .weighted_layers()
        .iter()
        .map(|&id| {
            let w = model
                .layer(id)
                .expect("valid id")
                .weights()
                .expect("weighted");
            per_layer + w.len() * 4
        })
        .sum::<usize>()
        + header
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{CompressionContext, Compressor, Upaq};
    use crate::config::UpaqConfig;
    use upaq_hwmodel::DeviceProfile;
    use upaq_nn::Layer;
    use upaq_tensor::Shape;

    fn model() -> (Model, CompressionContext) {
        let mut m = Model::new("m");
        let input = m.add_input("in", 9);
        let p = m
            .add_layer(Layer::conv2d("pfn", 9, 8, 1, 1, 0, 1), &[input])
            .unwrap();
        let c1 = m
            .add_layer(Layer::conv2d("c1", 8, 8, 3, 1, 1, 2), &[p])
            .unwrap();
        m.add_layer(Layer::conv2d("c2", 8, 8, 3, 1, 1, 3), &[c1])
            .unwrap();
        let mut shapes = HashMap::new();
        shapes.insert("in".to_string(), Shape::nchw(1, 9, 8, 8));
        (
            m,
            CompressionContext::new(DeviceProfile::jetson_orin_nano(), shapes, 5),
        )
    }

    #[test]
    fn dense_roundtrip_bit_exact() {
        let (m, _) = model();
        let packed = pack(&m, &BitAllocation::new(), &HashMap::new()).unwrap();
        let restored = unpack(&packed, &m).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn upaq_compressed_roundtrip_bit_exact() {
        let (m, ctx) = model();
        let outcome = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        let packed = pack(&outcome.model, &outcome.bits, &outcome.kinds).unwrap();
        let restored = unpack(&packed, &outcome.model).unwrap();
        for id in outcome.model.weighted_layers() {
            let a = outcome.model.layer(id).unwrap().weights().unwrap();
            let b = restored.layer(id).unwrap().weights().unwrap();
            // Values sit on the per-kernel quantization grid → the packed
            // codes reproduce them up to one rounding step of f32 math.
            assert!(
                a.max_abs_diff(b).unwrap() <= a.abs_max() * 1e-3 + 1e-6,
                "layer {id} drifted"
            );
        }
    }

    #[test]
    fn measured_ratio_matches_headline_claim() {
        // The real-bytes check behind Table 2: HCK's packed artifact must be
        // several times smaller than the dense artifact.
        let (m, ctx) = model();
        let outcome = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        let packed = pack(&outcome.model, &outcome.bits, &outcome.kinds).unwrap();
        let dense = dense_size_bytes(&m);
        let measured_ratio = dense as f64 / packed.len() as f64;
        assert!(measured_ratio > 3.0, "measured ratio {measured_ratio}");
        // And it should agree with the analytic estimate within ~40 %.
        let analytic = outcome.report.compression_ratio;
        let rel = (measured_ratio - analytic).abs() / analytic;
        assert!(
            rel < 0.4,
            "measured {measured_ratio} vs analytic {analytic}"
        );
    }

    #[test]
    fn bit_packing_roundtrip() {
        let mut w = Writer::new();
        let codes = vec![-7i32, 7, 0, -1, 3, -4, 2, 1, -6];
        w.codes(&codes, 4);
        let mut r = Reader::new(&w.bytes);
        assert_eq!(r.codes(9, 4).unwrap(), codes);
        // Odd widths too.
        let mut w = Writer::new();
        let codes5 = vec![-15i32, 15, -8, 7, 0];
        w.codes(&codes5, 5);
        let mut r = Reader::new(&w.bytes);
        assert_eq!(r.codes(5, 5).unwrap(), codes5);
    }

    #[test]
    fn corrupt_artifacts_rejected() {
        let (m, _) = model();
        let packed = pack(&m, &BitAllocation::new(), &HashMap::new()).unwrap();
        // Bad magic.
        let mut bad = packed.clone();
        bad.bytes[0] = b'X';
        assert!(unpack(&bad, &m).is_err());
        // Truncated.
        let mut short = packed.clone();
        short.bytes.truncate(packed.len() / 2);
        assert!(unpack(&short, &m).is_err());
    }

    #[test]
    fn wrong_template_rejected() {
        let (m, ctx) = model();
        let outcome = Upaq::new(UpaqConfig::lck()).compress(&m, &ctx).unwrap();
        let packed = pack(&outcome.model, &outcome.bits, &outcome.kinds).unwrap();
        let mut other = Model::new("other");
        let input = other.add_input("in", 9);
        other
            .add_layer(Layer::conv2d("pfn", 9, 4, 1, 1, 0, 1), &[input])
            .unwrap();
        assert!(unpack(&packed, &other).is_err());
    }

    #[test]
    fn unstructured_quantized_path() {
        // Ps&Qs-style: unstructured sparsity + 16-bit codes.
        let (m, _) = model();
        let mut pruned = m.deep_copy();
        {
            let l = pruned.layer_mut(2).unwrap();
            let mut w = l.weights().unwrap().clone();
            for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v = 0.0;
                }
            }
            l.set_weights(w);
        }
        let mut bits = BitAllocation::new();
        let mut kinds = HashMap::new();
        for id in pruned.weighted_layers() {
            bits.insert(id, 16);
            kinds.insert(id, SparsityKind::Unstructured);
        }
        let packed = pack(&pruned, &bits, &kinds).unwrap();
        let restored = unpack(&packed, &pruned).unwrap();
        for id in pruned.weighted_layers() {
            let a = pruned.layer(id).unwrap().weights().unwrap();
            let b = restored.layer(id).unwrap().weights().unwrap();
            assert!(a.max_abs_diff(b).unwrap() <= a.abs_max() * 1e-3);
        }
    }
}
