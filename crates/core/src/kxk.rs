//! k×k kernel compression — **Algorithm 4** of the paper.
//!
//! For one root group of same-kernel-size convolution layers: draw candidate
//! patterns (Algorithm 2), apply each to every kernel of the group, quantize
//! with each bitwidth from the `quant_bit` array (Algorithm 6), score the
//! resulting model with `E_s` (Eq. 2), and keep the best `(pattern, bits)`
//! pair — the `bestfit_kernel` the paper replicates onto the group's leaf
//! layers.

use crate::config::UpaqConfig;
use crate::pattern::{generate_candidates_from, Pattern};
use crate::quantizer::mp_quantizer;
use crate::score::ScoreContext;
use crate::{Result, UpaqError};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use upaq_hwmodel::exec::{BitAllocation, SparsityKind};
use upaq_nn::{LayerId, Model};
use upaq_tensor::Tensor;

/// The winning `(pattern, bits)` pair for one root group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelChoice {
    /// The selected pattern.
    pub pattern: Pattern,
    /// The selected quantization bitwidth.
    pub bits: u8,
    /// Efficiency score of the winning candidate.
    pub score: f64,
    /// Root-kernel SQNR of the winning candidate.
    pub sqnr: f32,
}

/// Applies a pattern mask then quantizes **per kernel**, returning the
/// restored weights plus the layer-level SQNR.
///
/// Granularity matters: the paper's Algorithm 4 feeds individual k×k
/// kernels through `mp_quantizer`, so every kernel gets its own symmetric
/// scale. A single per-tensor scale would zero out low-magnitude kernels
/// wholesale and inflate sparsity artificially.
pub(crate) fn mask_and_quantize(
    weights: &Tensor,
    pattern: &Pattern,
    bits: u8,
) -> Result<(Tensor, f32)> {
    let masked = pattern.mask().apply_to_weights(weights)?;
    let dims = weights.shape().dims();
    let k2 = dims[2] * dims[3];
    let mut rescaled = masked;
    {
        let data = rescaled.as_mut_slice();
        let orig = weights.as_slice();
        for (chunk, orig_chunk) in data.chunks_mut(k2).zip(orig.chunks(k2)) {
            rescale_chunk(chunk, orig_chunk);
        }
    }
    let mut out = rescaled.clone();
    {
        let data = out.as_mut_slice();
        for chunk in data.chunks_mut(k2) {
            quantize_chunk(chunk, bits)?;
        }
    }
    // SQNR measures quantization noise against the (rescaled) pruned kernel
    // — the quantity Algorithm 6 reports.
    let sqnr = upaq_tensor::quant::sqnr(&rescaled, &out)?;
    Ok((out, sqnr))
}

/// Rescales the surviving weights of one kernel so its L1 mass matches the
/// unpruned kernel (bounded to avoid blowing up nearly-empty kernels).
///
/// This is UPAQ's accuracy-retention mechanism ("dynamically adjusting the
/// kernel weights … preserving accuracy during the detection phase"):
/// without it, pattern pruning attenuates every activation by roughly the
/// pruned mass fraction, and the error compounds through deep ReLU stacks.
/// The baselines deliberately do not do this — the paper's critique of
/// R-TOSS is precisely that its L2-selected masks do not preserve critical
/// feature magnitudes.
pub(crate) fn rescale_chunk(kept: &mut [f32], original: &[f32]) {
    let orig_l1: f32 = original.iter().map(|w| w.abs()).sum();
    let kept_l1: f32 = kept.iter().map(|w| w.abs()).sum();
    if kept_l1 <= 1e-12 || orig_l1 <= 1e-12 {
        return;
    }
    let gain = (orig_l1 / kept_l1).min(2.5);
    for w in kept {
        *w *= gain;
    }
}

/// In-place symmetric fake-quantization of one kernel's weights.
pub(crate) fn quantize_chunk(chunk: &mut [f32], bits: u8) -> Result<()> {
    let t = Tensor::from_vec(upaq_tensor::Shape::vector(chunk.len()), chunk.to_vec())?;
    let q = mp_quantizer(&t, bits)?;
    chunk.copy_from_slice(q.kernel.as_slice());
    Ok(())
}

/// Algorithm 4 over a root group: mutates `model`'s group weights to the
/// best candidate and records the chosen bitwidth/sparsity kind for every
/// member.
///
/// # Errors
///
/// Returns [`UpaqError::BadConfig`] when no candidate could be scored, and
/// propagates tensor/model errors.
#[allow(clippy::too_many_arguments)]
pub fn compress_kxk_group(
    model: &mut Model,
    members: &[LayerId],
    config: &UpaqConfig,
    ctx: &ScoreContext,
    bits_alloc: &mut BitAllocation,
    kinds: &mut HashMap<LayerId, SparsityKind>,
    rng: &mut StdRng,
) -> Result<KernelChoice> {
    let root = members[0];
    let kernel = model
        .layer(root)?
        .kernel_size()
        .ok_or_else(|| UpaqError::BadConfig("k×k path requires a convolution root".into()))?;
    let originals: HashMap<LayerId, Tensor> = members
        .iter()
        .map(|&id| {
            let w = model
                .layer(id)
                .expect("valid id")
                .weights()
                .expect("weighted")
                .clone();
            (id, w)
        })
        .collect();

    let candidates = generate_candidates_from(
        &config.pattern_kinds,
        config.nonzeros,
        kernel,
        config.patterns_per_group,
        rng,
    );
    let mut best: Option<KernelChoice> = None;

    for pattern in &candidates {
        for &bits in &config.quant_bits {
            // Apply the candidate to the whole group (the paper replicates
            // the root's pattern onto the leaf kernels).
            let mut root_sqnr = f32::INFINITY;
            for &id in members {
                let (restored, sqnr) = mask_and_quantize(&originals[&id], pattern, bits)?;
                if id == root {
                    root_sqnr = sqnr;
                }
                model.layer_mut(id)?.set_weights(restored);
            }
            let mut cand_bits = bits_alloc.clone();
            let mut cand_kinds = kinds.clone();
            for &id in members {
                cand_bits.insert(id, bits);
                cand_kinds.insert(id, SparsityKind::SemiStructured);
            }
            let est = ctx.estimate_candidate(model, &cand_bits, &cand_kinds)?;
            let score = ctx.efficiency_score(root_sqnr, &est);
            if best.as_ref().is_none_or(|b| score > b.score) {
                best = Some(KernelChoice {
                    pattern: pattern.clone(),
                    bits,
                    score,
                    sqnr: root_sqnr,
                });
            }
        }
    }

    let choice = best.ok_or_else(|| UpaqError::BadConfig("no candidates scored".into()))?;
    // Re-apply the winner (the model currently holds the last candidate).
    for &id in members {
        let (restored, _) = mask_and_quantize(&originals[&id], &choice.pattern, choice.bits)?;
        model.layer_mut(id)?.set_weights(restored);
        bits_alloc.insert(id, choice.bits);
        kinds.insert(id, SparsityKind::SemiStructured);
    }
    Ok(choice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use upaq_hwmodel::DeviceProfile;
    use upaq_nn::group::preprocess;
    use upaq_nn::Layer;
    use upaq_tensor::Shape;

    fn setup() -> (Model, ScoreContext, StdRng) {
        let mut m = Model::new("m");
        let input = m.add_input("in", 4);
        let c1 = m
            .add_layer(Layer::conv2d("c1", 4, 8, 3, 1, 1, 1), &[input])
            .unwrap();
        m.add_layer(Layer::conv2d("c2", 8, 8, 3, 1, 1, 2), &[c1])
            .unwrap();
        let mut shapes = HashMap::new();
        shapes.insert("in".to_string(), Shape::nchw(1, 4, 12, 12));
        let ctx = ScoreContext::new(DeviceProfile::jetson_orin_nano(), shapes, &m, 0.3, 0.4, 0.3)
            .unwrap();
        (m, ctx, StdRng::seed_from_u64(5))
    }

    #[test]
    fn group_gets_common_pattern_and_bits() {
        let (mut m, ctx, mut rng) = setup();
        let groups = preprocess(&m);
        let root = groups.roots()[0];
        let members = groups.members(root).unwrap().to_vec();
        assert_eq!(members.len(), 2, "c1 and c2 share a root");
        let mut bits = BitAllocation::new();
        let mut kinds = HashMap::new();
        let cfg = UpaqConfig::hck();
        let choice = compress_kxk_group(
            &mut m, &members, &cfg, &ctx, &mut bits, &mut kinds, &mut rng,
        )
        .unwrap();
        assert_eq!(choice.pattern.nonzeros(), 2);
        assert!(cfg.quant_bits.contains(&choice.bits));
        for &id in &members {
            assert_eq!(bits[&id], choice.bits);
            assert_eq!(kinds[&id], SparsityKind::SemiStructured);
            // Every kernel of every member carries the 2-of-9 pattern.
            let w = m.layer(id).unwrap().weights().unwrap();
            let expected_nnz_max = w.len() / 9 * 2;
            assert!(w.count_nonzero() <= expected_nnz_max);
        }
    }

    #[test]
    fn hck_sparser_than_lck() {
        let (mut m_h, ctx_h, mut rng_h) = setup();
        let groups = preprocess(&m_h);
        let members = groups.members(groups.roots()[0]).unwrap().to_vec();
        let mut b = BitAllocation::new();
        let mut k = HashMap::new();
        compress_kxk_group(
            &mut m_h,
            &members,
            &UpaqConfig::hck(),
            &ctx_h,
            &mut b,
            &mut k,
            &mut rng_h,
        )
        .unwrap();
        let hck_sparsity = m_h.sparsity();

        let (mut m_l, ctx_l, mut rng_l) = setup();
        let mut b = BitAllocation::new();
        let mut k = HashMap::new();
        compress_kxk_group(
            &mut m_l,
            &members,
            &UpaqConfig::lck(),
            &ctx_l,
            &mut b,
            &mut k,
            &mut rng_l,
        )
        .unwrap();
        assert!(hck_sparsity > m_l.sparsity());
    }

    #[test]
    fn weights_are_quantized_to_grid() {
        let (mut m, ctx, mut rng) = setup();
        let groups = preprocess(&m);
        let members = groups.members(groups.roots()[0]).unwrap().to_vec();
        let mut bits = BitAllocation::new();
        let mut kinds = HashMap::new();
        let cfg = UpaqConfig::hck();
        let choice = compress_kxk_group(
            &mut m, &members, &cfg, &ctx, &mut bits, &mut kinds, &mut rng,
        )
        .unwrap();
        // Surviving weights must sit on each kernel's quantization grid
        // (scales are per-kernel — Algorithm 4 quantizes kernel by kernel).
        let w = m.layer(members[0]).unwrap().weights().unwrap();
        let levels = f64::from((1i32 << (choice.bits - 1)) - 1);
        for kernel in w.as_slice().chunks(9) {
            let max_abs = kernel.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            if max_abs == 0.0 {
                continue;
            }
            let scale = f64::from(max_abs) / levels;
            for &v in kernel {
                if v != 0.0 {
                    let q = f64::from(v) / scale;
                    assert!((q - q.round()).abs() < 1e-3, "weight {v} off-grid");
                }
            }
        }
    }
}
