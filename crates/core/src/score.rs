//! Efficiency score `E_s` — **Eq. 2** of the paper.
//!
//! `E_s = α·sqnr + β·(1/latency) + γ·(1/energy)` with α, β, γ ∈ [0, 1].
//! The three terms carry wildly different units, so (as any implementation
//! must) we evaluate them on commensurate scales:
//!
//! * SQNR enters in decibels normalized by 40 dB (the ~7-bit quantization
//!   regime), capped at 2 so a lossless candidate cannot drown the other
//!   terms;
//! * the latency and energy terms are the *improvement factors* over the
//!   uncompressed baseline (`base/candidate`), which is exactly
//!   `1/latency` with latency measured in units of the base model.
//!
//! Latency and energy come from the analytic on-device model
//! ([`upaq_hwmodel`]) — the paper's "model of on-device efficiency of the
//! compressed model".

use crate::Result;
use std::collections::HashMap;
use upaq_hwmodel::exec::{model_executions, BitAllocation, SparsityKind};
use upaq_hwmodel::latency::{estimate, Estimate};
use upaq_hwmodel::DeviceProfile;
use upaq_nn::{LayerId, Model};
use upaq_tensor::quant::sqnr_db;
use upaq_tensor::Shape;

/// SQNR normalization constant (dB) — see the module docs.
pub const SQNR_NORM_DB: f64 = 40.0;
/// Cap on the normalized SQNR term. Chosen just above the ≈8-bit operating
/// point (40 dB → 1.0) so "more fidelity than the task needs" cannot drown
/// the latency/energy terms — past ~50 dB extra weight bits stop changing
/// detection outputs, and the score must notice their cost instead.
pub const SQNR_TERM_CAP: f64 = 1.25;

/// Everything needed to score candidate compressed models.
#[derive(Debug, Clone)]
pub struct ScoreContext {
    device: DeviceProfile,
    input_shapes: HashMap<String, Shape>,
    base: Estimate,
    alpha: f64,
    beta: f64,
    gamma: f64,
}

impl ScoreContext {
    /// Builds a context by measuring the uncompressed `baseline` model on
    /// `device` (dense fp32).
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors.
    pub fn new(
        device: DeviceProfile,
        input_shapes: HashMap<String, Shape>,
        baseline: &Model,
        alpha: f64,
        beta: f64,
        gamma: f64,
    ) -> Result<Self> {
        let costs = upaq_nn::stats::model_costs(baseline, &input_shapes)?;
        let execs = model_executions(baseline, &costs, &BitAllocation::new(), &HashMap::new());
        let base = estimate(&device, &execs);
        Ok(ScoreContext {
            device,
            input_shapes,
            base,
            alpha,
            beta,
            gamma,
        })
    }

    /// The baseline (dense fp32) estimate.
    pub fn base(&self) -> &Estimate {
        &self.base
    }

    /// The device being modelled.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Estimates a candidate model under the given bit/sparsity allocations.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors.
    pub fn estimate_candidate(
        &self,
        model: &Model,
        bits: &BitAllocation,
        kinds: &HashMap<LayerId, SparsityKind>,
    ) -> Result<Estimate> {
        let costs = upaq_nn::stats::model_costs(model, &self.input_shapes)?;
        let execs = model_executions(model, &costs, bits, kinds);
        Ok(estimate(&self.device, &execs))
    }

    /// Eq. 2: combines a candidate's SQNR with its estimated latency/energy
    /// improvement factors.
    pub fn efficiency_score(&self, sqnr: f32, candidate: &Estimate) -> f64 {
        let sqnr_term = (f64::from(sqnr_db(sqnr)) / SQNR_NORM_DB).clamp(0.0, SQNR_TERM_CAP);
        let latency_term = if candidate.latency_s > 0.0 {
            self.base.latency_s / candidate.latency_s
        } else {
            0.0
        };
        let energy_term = if candidate.energy_j > 0.0 {
            self.base.energy_j / candidate.energy_j
        } else {
            0.0
        };
        self.alpha * sqnr_term + self.beta * latency_term + self.gamma * energy_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upaq_nn::Layer;

    fn model() -> (Model, HashMap<String, Shape>) {
        let mut m = Model::new("m");
        let input = m.add_input("in", 4);
        let c1 = m
            .add_layer(Layer::conv2d("c1", 4, 8, 3, 1, 1, 1), &[input])
            .unwrap();
        m.add_layer(Layer::conv2d("c2", 8, 8, 3, 1, 1, 2), &[c1])
            .unwrap();
        let mut shapes = HashMap::new();
        shapes.insert("in".to_string(), Shape::nchw(1, 4, 16, 16));
        (m, shapes)
    }

    fn ctx() -> (ScoreContext, Model) {
        let (m, shapes) = model();
        let ctx = ScoreContext::new(DeviceProfile::jetson_orin_nano(), shapes, &m, 0.3, 0.4, 0.3)
            .unwrap();
        (ctx, m)
    }

    #[test]
    fn baseline_scores_about_one() {
        let (ctx, m) = ctx();
        let est = ctx
            .estimate_candidate(&m, &BitAllocation::new(), &HashMap::new())
            .unwrap();
        // Latency/energy terms are exactly 1; SQNR term is capped ≤ 2.
        let score = ctx.efficiency_score(f32::INFINITY, &est);
        assert!((score - (0.3 * SQNR_TERM_CAP + 0.4 + 0.3)).abs() < 1e-9);
    }

    #[test]
    fn quantized_candidate_scores_higher_at_equal_sqnr() {
        // Hold the SQNR term fixed: the latency/energy improvement from
        // 8-bit weights must push the score up on a compute-heavy model.
        let mut m = Model::new("big");
        let input = m.add_input("in", 16);
        let c1 = m
            .add_layer(Layer::conv2d("c1", 16, 32, 3, 1, 1, 1), &[input])
            .unwrap();
        m.add_layer(Layer::conv2d("c2", 32, 32, 3, 1, 1, 2), &[c1])
            .unwrap();
        let mut shapes = HashMap::new();
        shapes.insert("in".to_string(), Shape::nchw(1, 16, 64, 64));
        let ctx = ScoreContext::new(DeviceProfile::jetson_orin_nano(), shapes, &m, 0.3, 0.4, 0.3)
            .unwrap();
        let mut bits = BitAllocation::new();
        let mut kinds = HashMap::new();
        for id in m.weighted_layers() {
            bits.insert(id, 8);
            kinds.insert(id, SparsityKind::SemiStructured);
        }
        let q_est = ctx.estimate_candidate(&m, &bits, &kinds).unwrap();
        let base_est = ctx
            .estimate_candidate(&m, &BitAllocation::new(), &HashMap::new())
            .unwrap();
        let sqnr = 10_000.0;
        let q_score = ctx.efficiency_score(sqnr, &q_est);
        let base_score = ctx.efficiency_score(sqnr, &base_est);
        assert!(q_score > base_score, "{q_score} !> {base_score}");
    }

    #[test]
    fn weights_scale_terms() {
        let (ctx0, m) = ctx();
        let est = ctx0
            .estimate_candidate(&m, &BitAllocation::new(), &HashMap::new())
            .unwrap();
        // β=1-only context weights the latency factor fully.
        let (model_m, shapes) = model();
        let ctx_latency = ScoreContext::new(
            DeviceProfile::jetson_orin_nano(),
            shapes,
            &model_m,
            0.0,
            1.0,
            0.0,
        )
        .unwrap();
        let s = ctx_latency.efficiency_score(1.0, &est);
        assert!((s - 1.0).abs() < 1e-9, "latency-only score {s}");
    }

    #[test]
    fn sqnr_term_capped() {
        let (ctx, m) = ctx();
        let est = ctx
            .estimate_candidate(&m, &BitAllocation::new(), &HashMap::new())
            .unwrap();
        let inf = ctx.efficiency_score(f32::INFINITY, &est);
        let huge = ctx.efficiency_score(1e30, &est);
        assert!((inf - huge).abs() < 1e-9);
    }
}
