//! Compression stage — **Algorithm 3** of the paper — plus the
//! framework-agnostic [`Compressor`] interface the baselines share.

use crate::config::UpaqConfig;
use crate::kxk::compress_kxk_group;
use crate::one_by_one::compress_1x1_group;
use crate::score::ScoreContext;
use crate::{Result, UpaqError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use upaq_hwmodel::exec::{model_executions, BitAllocation, SparsityKind};
use upaq_hwmodel::latency::estimate;
use upaq_hwmodel::size::compression_ratio;
use upaq_hwmodel::DeviceProfile;
use upaq_nn::group::preprocess;
use upaq_nn::{LayerId, Model};
use upaq_tensor::Shape;

/// Inputs every compression framework receives: the target device (for
/// efficiency modelling), the model's input geometry, and a seed.
#[derive(Debug, Clone)]
pub struct CompressionContext {
    /// Device the compressed model will deploy to.
    pub device: DeviceProfile,
    /// Named input shapes of the model.
    pub input_shapes: HashMap<String, Shape>,
    /// Run seed (mixed into the framework's own seed).
    pub seed: u64,
    /// Layers every framework must leave untouched (e.g. a detection head
    /// that is re-calibrated after compression — the standard
    /// keep-boundary-layers-dense policy).
    pub skip_layers: Vec<LayerId>,
}

impl CompressionContext {
    /// Creates a context with no skipped layers.
    pub fn new(device: DeviceProfile, input_shapes: HashMap<String, Shape>, seed: u64) -> Self {
        CompressionContext {
            device,
            input_shapes,
            seed,
            skip_layers: Vec::new(),
        }
    }

    /// Builder-style: marks layers as off-limits for compression.
    pub fn with_skip_layers(mut self, skip: Vec<LayerId>) -> Self {
        self.skip_layers = skip;
        self
    }

    /// Whether a layer must be left untouched.
    pub fn is_skipped(&self, id: LayerId) -> bool {
        self.skip_layers.contains(&id)
    }
}

/// Summary statistics of one compression run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionReport {
    /// Framework label (e.g. `"UPAQ (HCK)"`).
    pub framework: String,
    /// Stored-size ratio against the dense fp32 original.
    pub compression_ratio: f64,
    /// Overall weight sparsity of the compressed model.
    pub sparsity: f32,
    /// Predicted inference latency on the context device, milliseconds.
    pub latency_ms: f64,
    /// Predicted inference energy on the context device, joules.
    pub energy_j: f64,
    /// Mean selected bitwidth over weighted layers.
    pub mean_bits: f64,
}

/// A compressed model plus everything needed to deploy and evaluate it.
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// The compressed model (same architecture, modified weights).
    pub model: Model,
    /// Per-layer selected bitwidths.
    pub bits: BitAllocation,
    /// Per-layer sparsity structure.
    pub kinds: HashMap<LayerId, SparsityKind>,
    /// Summary statistics.
    pub report: CompressionReport,
}

/// The interface every compression framework in this workspace implements —
/// UPAQ here, and the four baselines in `upaq-baselines`.
pub trait Compressor {
    /// Framework display name (matches the paper's table headers).
    fn name(&self) -> &str;

    /// Compresses `model` for the context device.
    ///
    /// # Errors
    ///
    /// Implementations return [`UpaqError`] for invalid configurations or
    /// models with nothing to compress.
    fn compress(&self, model: &Model, ctx: &CompressionContext) -> Result<CompressionOutcome>;
}

/// Builds the summary report shared by all frameworks.
///
/// # Errors
///
/// Propagates shape-inference errors.
pub fn build_report(
    framework: &str,
    original: &Model,
    compressed: &Model,
    bits: &BitAllocation,
    kinds: &HashMap<LayerId, SparsityKind>,
    ctx: &CompressionContext,
) -> Result<CompressionReport> {
    let base_costs = upaq_nn::stats::model_costs(original, &ctx.input_shapes)?;
    let base_execs = model_executions(
        original,
        &base_costs,
        &BitAllocation::new(),
        &HashMap::new(),
    );
    let comp_costs = upaq_nn::stats::model_costs(compressed, &ctx.input_shapes)?;
    let comp_execs = model_executions(compressed, &comp_costs, bits, kinds);
    let est = estimate(&ctx.device, &comp_execs);
    let weighted = compressed.weighted_layers();
    let mean_bits = if weighted.is_empty() {
        32.0
    } else {
        weighted
            .iter()
            .map(|id| f64::from(bits.get(id).copied().unwrap_or(32)))
            .sum::<f64>()
            / weighted.len() as f64
    };
    Ok(CompressionReport {
        framework: framework.to_string(),
        compression_ratio: compression_ratio(&base_execs, &comp_execs),
        sparsity: compressed.sparsity(),
        latency_ms: est.latency_ms(),
        energy_j: est.energy_j,
        mean_bits,
    })
}

/// The UPAQ framework: Algorithm 3 orchestrating Algorithms 1/2/4/5/6 under
/// the efficiency score.
#[derive(Debug, Clone)]
pub struct Upaq {
    config: UpaqConfig,
}

impl Upaq {
    /// Creates the framework with a configuration (see
    /// [`UpaqConfig::hck`] / [`UpaqConfig::lck`]).
    pub fn new(config: UpaqConfig) -> Self {
        Upaq { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &UpaqConfig {
        &self.config
    }
}

impl Compressor for Upaq {
    fn name(&self) -> &str {
        &self.config.label
    }

    /// Algorithm 3: deep-copy the model, group layers under roots
    /// (Algorithm 1), route each root through k×k (Algorithm 4) or 1×1
    /// (Algorithm 5) compression, and replicate each root's winning pattern
    /// onto its leaves.
    fn compress(&self, model: &Model, ctx: &CompressionContext) -> Result<CompressionOutcome> {
        self.config.validate()?;
        let mut mc = model.deep_copy(); // Algorithm 3, line 1
        let groups = preprocess(&mc); // Algorithm 1
        if groups.is_empty() {
            return Err(UpaqError::NothingToCompress);
        }
        let score_ctx = ScoreContext::new(
            ctx.device.clone(),
            ctx.input_shapes.clone(),
            model,
            self.config.alpha,
            self.config.beta,
            self.config.gamma,
        )?;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ ctx.seed);
        let mut bits = BitAllocation::new();
        let mut kinds: HashMap<LayerId, SparsityKind> = HashMap::new();

        for root in groups.roots() {
            let members: Vec<LayerId> = groups
                .members(root)
                .expect("root exists")
                .iter()
                .copied()
                .filter(|&id| !ctx.is_skipped(id))
                .collect();
            if members.is_empty() {
                continue;
            }
            let is_kxk = mc.layer(members[0])?.kernel_size().is_some_and(|k| k > 1); // Algorithm 3, line 7
            if is_kxk {
                compress_kxk_group(
                    &mut mc,
                    &members,
                    &self.config,
                    &score_ctx,
                    &mut bits,
                    &mut kinds,
                    &mut rng,
                )?;
            } else if self.config.compress_pointwise {
                compress_1x1_group(
                    &mut mc,
                    &members,
                    &self.config,
                    &score_ctx,
                    &mut bits,
                    &mut kinds,
                    &mut rng,
                )?;
            }
        }

        let report = build_report(self.name(), model, &mc, &bits, &kinds, ctx)?;
        Ok(CompressionOutcome {
            model: mc,
            bits,
            kinds,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upaq_nn::Layer;

    fn test_model() -> (Model, CompressionContext) {
        let mut m = Model::new("m");
        let input = m.add_input("in", 9);
        // PFN-style 1×1 pair then a 3×3 stack — exercises both algorithms.
        let p0 = m
            .add_layer(Layer::conv2d("pfn0", 9, 8, 1, 1, 0, 1), &[input])
            .unwrap();
        let p1 = m
            .add_layer(Layer::conv2d("pfn1", 8, 8, 1, 1, 0, 2), &[p0])
            .unwrap();
        let c1 = m
            .add_layer(Layer::conv2d("c1", 8, 8, 3, 1, 1, 3), &[p1])
            .unwrap();
        m.add_layer(Layer::conv2d("c2", 8, 8, 3, 1, 1, 4), &[c1])
            .unwrap();
        let mut shapes = HashMap::new();
        shapes.insert("in".to_string(), Shape::nchw(1, 9, 8, 8));
        let ctx = CompressionContext::new(DeviceProfile::jetson_orin_nano(), shapes, 7);
        (m, ctx)
    }

    #[test]
    fn upaq_compresses_both_kernel_families() {
        let (m, ctx) = test_model();
        let outcome = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        // Every weighted layer got an allocation.
        for id in outcome.model.weighted_layers() {
            assert!(outcome.bits.contains_key(&id), "layer {id} missing bits");
            assert_eq!(outcome.kinds[&id], SparsityKind::SemiStructured);
        }
        // Original untouched.
        assert_eq!(m.sparsity(), 0.0);
        assert!(outcome.model.sparsity() > 0.5);
    }

    #[test]
    fn hck_compresses_more_than_lck() {
        let (m, ctx) = test_model();
        let hck = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        let lck = Upaq::new(UpaqConfig::lck()).compress(&m, &ctx).unwrap();
        assert!(
            hck.report.compression_ratio > lck.report.compression_ratio,
            "HCK {} vs LCK {}",
            hck.report.compression_ratio,
            lck.report.compression_ratio
        );
        assert!(hck.report.latency_ms <= lck.report.latency_ms + 1e-9);
    }

    #[test]
    fn compression_ratio_in_paper_ballpark() {
        // HCK: 2/9 weights at ≤8 bits → ratio far above 4×.
        let (m, ctx) = test_model();
        let outcome = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        assert!(
            outcome.report.compression_ratio > 4.0,
            "ratio {}",
            outcome.report.compression_ratio
        );
    }

    #[test]
    fn predicted_latency_improves() {
        let (m, ctx) = test_model();
        let base =
            build_report("base", &m, &m, &BitAllocation::new(), &HashMap::new(), &ctx).unwrap();
        let outcome = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        assert!(outcome.report.latency_ms < base.latency_ms);
        assert!(outcome.report.energy_j < base.energy_j);
    }

    #[test]
    fn deterministic_given_seed() {
        let (m, ctx) = test_model();
        let a = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        let b = Upaq::new(UpaqConfig::hck()).compress(&m, &ctx).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn empty_model_rejected() {
        let m = Model::new("empty");
        let ctx = CompressionContext::new(DeviceProfile::jetson_orin_nano(), HashMap::new(), 0);
        assert!(matches!(
            Upaq::new(UpaqConfig::hck()).compress(&m, &ctx),
            Err(UpaqError::NothingToCompress)
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let (m, ctx) = test_model();
        let mut cfg = UpaqConfig::hck();
        cfg.quant_bits.clear();
        assert!(Upaq::new(cfg).compress(&m, &ctx).is_err());
    }

    #[test]
    fn mean_bits_within_config_range() {
        let (m, ctx) = test_model();
        let outcome = Upaq::new(UpaqConfig::lck()).compress(&m, &ctx).unwrap();
        assert!(outcome.report.mean_bits >= 8.0 && outcome.report.mean_bits <= 16.0);
    }
}
