//! **UPAQ** — semi-structured pattern pruning with mixed-precision
//! quantization for 3D object detectors.
//!
//! This crate is the paper's primary contribution
//! (*UPAQ: A Framework for Real-Time and Energy-Efficient 3D Object
//! Detection in Autonomous Vehicles*, DATE 2025), implemented over the
//! workspace substrates:
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 (preprocessing: DFS root/leaf groups) | [`upaq_nn::group`] (re-exported as [`preprocess`]) |
//! | Algorithm 2 (pattern generator) | [`pattern`] |
//! | Algorithm 3 (compression stage) | [`compress`] |
//! | Algorithm 4 (k×k kernel compression) | [`kxk`] |
//! | Algorithm 5 (1×1 kernel transform + compression) | [`one_by_one`] |
//! | Algorithm 6 (`mp_quantizer`) | [`quantizer`] |
//! | Eq. 2 (efficiency score `E_s`) | [`score`] |
//! | HCK / LCK variants (§V-A) | [`config::UpaqConfig::hck`] / [`config::UpaqConfig::lck`] |
//!
//! # Example
//!
//! ```
//! use upaq::config::UpaqConfig;
//! use upaq::compress::{CompressionContext, Compressor, Upaq};
//! use upaq_hwmodel::DeviceProfile;
//! use upaq_nn::{Layer, Model};
//!
//! # fn main() -> Result<(), upaq::UpaqError> {
//! let mut model = Model::new("demo");
//! let input = model.add_input("in", 4);
//! let c1 = model.add_layer(Layer::conv2d("c1", 4, 8, 3, 1, 1, 1), &[input])?;
//! model.add_layer(Layer::conv2d("c2", 8, 8, 3, 1, 1, 2), &[c1])?;
//!
//! let ctx = CompressionContext::new(
//!     DeviceProfile::jetson_orin_nano(),
//!     [("in".to_string(), upaq_tensor::Shape::nchw(1, 4, 8, 8))].into(),
//!     42,
//! );
//! let outcome = Upaq::new(UpaqConfig::hck()).compress(&model, &ctx)?;
//! assert!(outcome.report.compression_ratio > 2.0);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod compress;
pub mod config;
pub mod error;
pub mod kxk;
pub mod one_by_one;
pub mod pattern;
pub mod quantizer;
pub mod score;
pub mod sensitivity;

pub use compress::{CompressionContext, CompressionOutcome, CompressionReport, Compressor, Upaq};
pub use config::UpaqConfig;
pub use error::UpaqError;
pub use pattern::{Pattern, PatternKind};
/// Re-export of the preprocessing stage (paper Algorithm 1).
pub use upaq_nn::group::preprocess;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, UpaqError>;
