//! `mp_quantizer` — **Algorithm 6** of the paper.
//!
//! Symmetric per-tensor quantization returning the quantized-and-restored
//! kernel plus its SQNR. The mixed-precision behaviour comes from the
//! caller (Algorithms 4/5) sweeping the `quant_bit` array and keeping the
//! bitwidth with the best efficiency score.

use crate::Result;
use upaq_tensor::quant::fake_quantize;
use upaq_tensor::Tensor;

/// Result of one `mp_quantizer` call.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKernel {
    /// The de-quantized ("fake-quantized") kernel written back to the model.
    pub kernel: Tensor,
    /// Signal-to-quantization-noise ratio (power ratio, not dB).
    pub sqnr: f32,
    /// Bitwidth used.
    pub bits: u8,
}

/// Algorithm 6: quantize `kernel` symmetrically at `bits` bits.
///
/// Steps (paper lines 1–8): `α = max(|min|, |max|)`,
/// `scale = α / (2^(b−1) − 1)`, `x_q = clip(round(x / scale))`,
/// `sqnr = var(x) / var(x − x̂)`.
///
/// # Errors
///
/// Returns an error for unsupported bitwidths (outside 2..=16).
pub fn mp_quantizer(kernel: &Tensor, bits: u8) -> Result<QuantizedKernel> {
    let (restored, sqnr) = fake_quantize(kernel, bits)?;
    Ok(QuantizedKernel {
        kernel: restored,
        sqnr,
        bits,
    })
}

/// Sweeps a `quant_bit` array, returning one [`QuantizedKernel`] per entry
/// (callers score each with `E_s` and keep the winner).
///
/// # Errors
///
/// Returns an error when `bits` is empty or contains unsupported widths.
pub fn quantize_candidates(kernel: &Tensor, bits: &[u8]) -> Result<Vec<QuantizedKernel>> {
    if bits.is_empty() {
        return Err(crate::UpaqError::BadConfig(
            "quant_bits must not be empty".into(),
        ));
    }
    bits.iter().map(|&b| mp_quantizer(kernel, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use upaq_tensor::Shape;

    fn kernel() -> Tensor {
        Tensor::from_vec(
            Shape::matrix(3, 3),
            vec![0.9, -0.4, 0.0, 0.2, -0.8, 0.1, 0.0, 0.5, -0.3],
        )
        .unwrap()
    }

    #[test]
    fn preserves_shape_and_zeros() {
        let q = mp_quantizer(&kernel(), 8).unwrap();
        assert_eq!(q.kernel.shape(), kernel().shape());
        assert_eq!(q.kernel.get(&[0, 2]).unwrap(), 0.0);
        assert_eq!(q.bits, 8);
    }

    #[test]
    fn sqnr_improves_with_bits() {
        let k = kernel();
        let q4 = mp_quantizer(&k, 4).unwrap();
        let q16 = mp_quantizer(&k, 16).unwrap();
        assert!(q16.sqnr > q4.sqnr);
    }

    #[test]
    fn candidate_sweep_covers_all_bits() {
        let cands = quantize_candidates(&kernel(), &[4, 8, 16]).unwrap();
        assert_eq!(cands.len(), 3);
        assert_eq!(cands[0].bits, 4);
        assert_eq!(cands[2].bits, 16);
    }

    #[test]
    fn empty_bits_rejected() {
        assert!(quantize_candidates(&kernel(), &[]).is_err());
    }

    #[test]
    fn unsupported_bits_propagate() {
        assert!(mp_quantizer(&kernel(), 1).is_err());
        assert!(quantize_candidates(&kernel(), &[8, 40]).is_err());
    }
}
