//! Per-layer compression-sensitivity analysis.
//!
//! Mixed-precision quantization works because "for many models there is a
//! distinct difference in sensitivity to quantization from layer to layer"
//! (paper §III-B). This module measures that difference directly: for every
//! weighted layer it reports the SQNR of per-kernel symmetric quantization
//! at each candidate bitwidth, plus the L2 mass a pattern of `n` non-zeros
//! would retain — the two signals the efficiency-score search trades
//! against latency/energy.

use crate::kxk::quantize_chunk;
use crate::Result;
use serde::{Deserialize, Serialize};
use upaq_nn::{LayerId, Model};
use upaq_tensor::quant::{sqnr, sqnr_db};

/// Sensitivity record for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSensitivity {
    /// Layer id.
    pub layer: LayerId,
    /// Layer name.
    pub name: String,
    /// Total weights.
    pub weights: usize,
    /// `(bits, SQNR dB)` of per-kernel quantization at each probed width.
    pub quantization: Vec<(u8, f32)>,
    /// `(nonzeros, retained L2 fraction)` of the best-case pattern keeping
    /// the top-`n` magnitudes per 9-weight kernel.
    pub pruning: Vec<(usize, f32)>,
}

/// Probes every weighted layer of `model` at the given bitwidths and
/// pattern sizes.
///
/// # Errors
///
/// Propagates quantization errors (unsupported bitwidths).
pub fn analyze(
    model: &Model,
    bit_widths: &[u8],
    nonzeros: &[usize],
) -> Result<Vec<LayerSensitivity>> {
    let mut out = Vec::new();
    for id in model.weighted_layers() {
        let layer = model.layer(id)?;
        let weights = layer.weights().expect("weighted");
        let data = weights.as_slice();

        let mut quantization = Vec::with_capacity(bit_widths.len());
        for &bits in bit_widths {
            let mut restored = weights.clone();
            {
                let buf = restored.as_mut_slice();
                for chunk in buf.chunks_mut(9) {
                    quantize_chunk(chunk, bits)?;
                }
            }
            let ratio = sqnr(weights, &restored)?;
            quantization.push((bits, sqnr_db(ratio)));
        }

        let total_l2: f32 = data.iter().map(|v| v * v).sum();
        let mut pruning = Vec::with_capacity(nonzeros.len());
        for &n in nonzeros {
            let mut kept_l2 = 0.0f32;
            for kernel in data.chunks(9) {
                let mut mags: Vec<f32> = kernel.iter().map(|v| v * v).collect();
                mags.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                kept_l2 += mags.iter().take(n).sum::<f32>();
            }
            let frac = if total_l2 > 0.0 {
                kept_l2 / total_l2
            } else {
                1.0
            };
            pruning.push((n, frac));
        }

        out.push(LayerSensitivity {
            layer: id,
            name: layer.name().to_string(),
            weights: weights.len(),
            quantization,
            pruning,
        });
    }
    Ok(out)
}

/// The most quantization-sensitive layers: those with the lowest SQNR at
/// the narrowest probed width, ascending.
pub fn most_sensitive(records: &[LayerSensitivity], top: usize) -> Vec<&LayerSensitivity> {
    let mut refs: Vec<&LayerSensitivity> = records.iter().collect();
    refs.sort_by(|a, b| {
        let sa = a.quantization.first().map(|q| q.1).unwrap_or(f32::INFINITY);
        let sb = b.quantization.first().map(|q| q.1).unwrap_or(f32::INFINITY);
        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
    });
    refs.truncate(top);
    refs
}

#[cfg(test)]
mod tests {
    use super::*;
    use upaq_nn::Layer;

    fn model() -> Model {
        let mut m = Model::new("m");
        let input = m.add_input("in", 4);
        let c1 = m
            .add_layer(Layer::conv2d("c1", 4, 8, 3, 1, 1, 1), &[input])
            .unwrap();
        m.add_layer(Layer::conv2d("c2", 8, 8, 1, 1, 0, 2), &[c1])
            .unwrap();
        m
    }

    #[test]
    fn covers_all_weighted_layers() {
        let records = analyze(&model(), &[4, 8], &[2, 3]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].quantization.len(), 2);
        assert_eq!(records[0].pruning.len(), 2);
    }

    #[test]
    fn sqnr_improves_with_bits() {
        let records = analyze(&model(), &[4, 8, 16], &[3]).unwrap();
        for r in &records {
            assert!(r.quantization[0].1 < r.quantization[1].1, "{}", r.name);
            assert!(r.quantization[1].1 < r.quantization[2].1, "{}", r.name);
        }
    }

    #[test]
    fn retained_l2_grows_with_nonzeros() {
        let records = analyze(&model(), &[8], &[1, 2, 3, 9]).unwrap();
        for r in &records {
            let fracs: Vec<f32> = r.pruning.iter().map(|p| p.1).collect();
            assert!(fracs.windows(2).all(|w| w[0] <= w[1] + 1e-6), "{:?}", fracs);
            // Keeping all 9 retains everything.
            assert!((fracs.last().unwrap() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn most_sensitive_sorted_ascending() {
        let records = analyze(&model(), &[4], &[2]).unwrap();
        let top = most_sensitive(&records, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].quantization[0].1 <= top[1].quantization[0].1);
    }
}
