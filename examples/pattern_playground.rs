//! Visualize the UPAQ pattern generator (paper Algorithm 2) and the effect
//! of pattern pruning + quantization on a kernel.
//!
//! Run with `cargo run --release --example pattern_playground`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use upaq::pattern::{pattern_of_kind, Pattern, PatternKind};
use upaq::quantizer::mp_quantizer;
use upaq_tensor::quant::sqnr_db;
use upaq_tensor::{Shape, Tensor};

fn show(pattern: &Pattern) {
    println!("{:?} (n={}):", pattern.kind(), pattern.nonzeros());
    let mask = pattern.mask();
    for r in 0..pattern.dim() {
        let row: String = (0..pattern.dim())
            .map(|c| if mask.is_kept(r, c) { " ■" } else { " ·" })
            .collect();
        println!("  {row}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    println!("── the four pattern families (3 non-zeros in a 3×3 kernel) ──");
    for kind in PatternKind::ALL {
        show(&pattern_of_kind(kind, 3, 3, &mut rng));
    }

    println!("\n── pruning + quantization on a sample kernel ──");
    let kernel = Tensor::from_vec(
        Shape::matrix(3, 3),
        vec![0.82, -0.11, 0.05, 0.07, 0.95, -0.03, -0.14, 0.02, 0.67],
    )?;
    println!("original: {kernel}");
    let pattern = pattern_of_kind(PatternKind::MainDiagonal, 3, 3, &mut rng);
    let masked = pattern.mask().apply(&kernel)?;
    println!("after main-diagonal pruning: {masked}");
    for bits in [4u8, 8, 16] {
        let q = mp_quantizer(&masked, bits)?;
        println!(
            "  {bits:>2}-bit quantization: SQNR {:>5.1} dB, kernel {}",
            sqnr_db(q.sqnr),
            q.kernel
        );
    }
    println!("\nHigher bitwidths preserve more signal; the UPAQ efficiency score");
    println!("trades that against the latency/energy cost of the extra bits.");
    Ok(())
}
