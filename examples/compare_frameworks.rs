//! Compare all six compression frameworks on one detector.
//!
//! Runs Ps&Qs, CLIP-Q, R-TOSS, LiDAR-PTQ and both UPAQ variants on a small
//! PointPillars model and prints compression ratio, sparsity, bitwidths and
//! the predicted Jetson Orin Nano latency/energy for each — a miniature of
//! the paper's Table 2 (without the mAP columns; see the `table2` harness
//! binary for the full experiment).
//!
//! Run with `cargo run --release --example compare_frameworks`.

use std::collections::HashMap;
use upaq::compress::{CompressionContext, Compressor, Upaq};
use upaq::config::UpaqConfig;
use upaq_baselines::all_baselines;
use upaq_hwmodel::calibrate_to;
use upaq_hwmodel::exec::{model_executions, BitAllocation};
use upaq_hwmodel::DeviceProfile;
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper-scale model; the device model is calibrated so the dense base
    // matches the paper's measured 35.98 ms / 0.863 J on the Jetson Orin.
    let detector = PointPillars::build(&PointPillarsConfig::paper())?;
    let head = detector.head_layer()?;
    let shapes = detector.input_shapes();
    let costs = upaq_nn::stats::model_costs(&detector.model, &shapes)?;
    let execs = model_executions(
        &detector.model,
        &costs,
        &BitAllocation::new(),
        &HashMap::new(),
    );
    let device = calibrate_to(&DeviceProfile::jetson_orin_nano(), &execs, 35.98e-3, 0.863);
    let ctx = CompressionContext::new(device, shapes, 7).with_skip_layers(vec![head]);

    let mut frameworks: Vec<Box<dyn Compressor>> = all_baselines();
    frameworks.push(Box::new(Upaq::new(UpaqConfig::lck())));
    frameworks.push(Box::new(Upaq::new(UpaqConfig::hck())));

    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "framework", "compression", "sparsity", "mean bits", "latency ms", "energy J"
    );
    for framework in &frameworks {
        let outcome = framework.compress(&detector.model, &ctx)?;
        let r = &outcome.report;
        println!(
            "{:<12} {:>11.2}× {:>9.1}% {:>10.1} {:>12.3} {:>10.4}",
            r.framework,
            r.compression_ratio,
            r.sparsity * 100.0,
            r.mean_bits,
            r.latency_ms,
            r.energy_j
        );
    }
    println!("\nUPAQ (HCK) should show the highest compression; UPAQ variants the lowest latency.");
    Ok(())
}
