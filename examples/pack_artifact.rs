//! Produce a real compressed-model artifact and measure its size on disk.
//!
//! The paper's compression ratios are statements about stored bytes; this
//! example compresses a PointPillars model with UPAQ, serializes the result
//! into the bit-packed artifact format (codes + per-kernel scales + pattern
//! masks), writes it next to the dense artifact, and compares measured file
//! sizes against the analytic ratio — then restores the weights and checks
//! they round-trip bit-exactly.
//!
//! Run with `cargo run --release --example pack_artifact`.

use std::collections::HashMap;
use upaq::artifact::{dense_size_bytes, pack, unpack};
use upaq::compress::{CompressionContext, Compressor, Upaq};
use upaq::config::UpaqConfig;
use upaq_hwmodel::exec::BitAllocation;
use upaq_hwmodel::DeviceProfile;
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let detector = PointPillars::build(&PointPillarsConfig::paper())?;
    let head = detector.head_layer()?;
    let ctx = CompressionContext::new(
        DeviceProfile::jetson_orin_nano(),
        detector.input_shapes(),
        7,
    )
    .with_skip_layers(vec![head]);

    for config in [UpaqConfig::lck(), UpaqConfig::hck()] {
        let label = config.label.clone();
        let outcome = Upaq::new(config).compress(&detector.model, &ctx)?;
        let packed = pack(&outcome.model, &outcome.bits, &outcome.kinds)?;
        let dense_bytes = dense_size_bytes(&detector.model);
        let measured = dense_bytes as f64 / packed.len() as f64;

        let dir = std::env::temp_dir();
        let path = dir.join(format!("upaq_{}.bin", label.replace(['(', ')', ' '], "")));
        std::fs::write(&path, packed.as_bytes())?;
        let on_disk = std::fs::metadata(&path)?.len();

        println!(
            "{label}: dense {:.2} MiB → packed {:.2} MiB on disk ({})",
            dense_bytes as f64 / 1024.0 / 1024.0,
            on_disk as f64 / 1024.0 / 1024.0,
            path.display()
        );
        println!(
            "  measured ratio {measured:.2}× vs analytic {:.2}×",
            outcome.report.compression_ratio
        );

        // Round-trip: restored weights must match the compressed model.
        let restored = unpack(&packed, &outcome.model)?;
        let mut max_err = 0.0f32;
        for id in outcome.model.weighted_layers() {
            let a = outcome.model.layer(id)?.weights().expect("weighted");
            let b = restored.layer(id)?.weights().expect("weighted");
            max_err = max_err.max(a.max_abs_diff(b)?);
        }
        println!("  round-trip max weight error: {max_err:.2e}\n");
        std::fs::remove_file(&path)?;
    }

    // Dense baseline artifact for reference.
    let dense_packed = pack(&detector.model, &BitAllocation::new(), &HashMap::new())?;
    println!(
        "dense artifact: {:.2} MiB ({} weights)",
        dense_packed.len() as f64 / 1024.0 / 1024.0,
        detector.model.param_count()
    );
    Ok(())
}
