//! Camera vs LiDAR 3D detection — the paper's Fig. 1 motivation.
//!
//! The paper opens by contrasting SMOKE (monocular camera) with
//! PointPillars (LiDAR): the camera detector misses objects the LiDAR
//! detector finds, because monocular depth is ambiguous. This example
//! reproduces that comparison on one synthetic scene: both detectors are
//! built at test scale, head-fit on the same training scenes, and run on
//! the same held-out scene.
//!
//! Run with `cargo run --release --example camera_vs_lidar`.

use upaq_det3d::eval::evaluate_detections;
use upaq_kitti::dataset::{Dataset, DatasetConfig};
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};
use upaq_models::pretrain::{fit_camera_head, fit_lidar_head};
use upaq_models::smoke::{Smoke, SmokeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke_cfg = SmokeConfig::tiny();
    let mut data_cfg = DatasetConfig::evaluation(16);
    data_cfg.camera = smoke_cfg.calib.clone();
    let data = Dataset::generate(&data_cfg, 11);
    let train: Vec<usize> = (0..10).collect();
    let test = 12usize;

    let mut lidar = PointPillars::build(&PointPillarsConfig::tiny())?;
    fit_lidar_head(&mut lidar, &data, &train, 1e-3)?;
    let mut camera = Smoke::build(&smoke_cfg)?;
    fit_camera_head(&mut camera, &data, &train, 1e-3)?;

    let scene = data.scene(test);
    println!("scene {test}: {} ground-truth objects", scene.objects.len());

    let lidar_boxes = lidar.detect(&data.lidar(test))?;
    let camera_boxes = camera.detect(&data.camera(test))?;
    let lidar_eval = evaluate_detections(
        std::slice::from_ref(&lidar_boxes),
        std::slice::from_ref(&scene),
    );
    let camera_eval = evaluate_detections(
        std::slice::from_ref(&camera_boxes),
        std::slice::from_ref(&scene),
    );

    println!(
        "PointPillars (LiDAR):  {} detections, mAP {:.1}",
        lidar_boxes.len(),
        lidar_eval.map
    );
    println!(
        "SMOKE (camera):        {} detections, mAP {:.1}",
        camera_boxes.len(),
        camera_eval.map
    );
    println!("\nAs in the paper's Fig. 1, the monocular detector localizes worse — depth");
    println!("must be inferred photometrically, while LiDAR measures it directly.");
    Ok(())
}
