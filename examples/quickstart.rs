//! Quickstart: compress a 3D object detector with UPAQ in five steps.
//!
//! Builds a small PointPillars detector over a synthetic KITTI-like
//! dataset, pretrains its head, compresses the backbone with UPAQ (LCK),
//! re-calibrates, and compares accuracy/size before and after.
//!
//! Run with `cargo run --release --example quickstart`.

use upaq::compress::{CompressionContext, Compressor, Upaq};
use upaq::config::UpaqConfig;
use upaq_bench_free::eval_map;
use upaq_hwmodel::DeviceProfile;
use upaq_kitti::dataset::{Dataset, DatasetConfig};
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};
use upaq_models::pretrain::fit_lidar_head;

// Helpers shared by the examples (kept in the example file so each example
// is self-contained and copy-pasteable).
mod upaq_bench_free {
    use upaq_det3d::eval::evaluate_detections;
    use upaq_det3d::Box3d;
    use upaq_kitti::dataset::Dataset;
    use upaq_models::LidarDetector;

    pub fn eval_map(
        det: &LidarDetector,
        data: &Dataset,
        scenes: &[usize],
    ) -> Result<f32, Box<dyn std::error::Error>> {
        let mut dets: Vec<Vec<Box3d>> = Vec::new();
        let mut refs = Vec::new();
        for &i in scenes {
            dets.push(det.detect(&data.lidar(i))?);
            refs.push(data.scene(i));
        }
        Ok(evaluate_detections(&dets, &refs).map)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic KITTI-like dataset (the paper uses KITTI, split
    //    80/10/10 — Dataset::split applies the same ratios).
    let data = Dataset::generate(&DatasetConfig::evaluation(20), 42);
    let split = data.split();
    let train: Vec<usize> = split.train.iter().copied().take(8).collect();
    let eval: Vec<usize> = split.test.clone();

    // 2. Build and "pretrain" a PointPillars detector (closed-form head fit).
    let mut detector = PointPillars::build(&PointPillarsConfig::tiny())?;
    fit_lidar_head(&mut detector, &data, &train, 1e-3)?;
    let base_map = eval_map(&detector, &data, &eval)?;
    let base_params = detector.model.param_count();
    println!("base:       {base_params} params, mAP {base_map:.1}");

    // 3. Compress with UPAQ (LCK = accuracy-biased preset; HCK compresses
    //    harder). The detection head is skipped and re-fit afterwards.
    let head = detector.head_layer()?;
    let ctx = CompressionContext::new(
        DeviceProfile::jetson_orin_nano(),
        detector.input_shapes(),
        42,
    )
    .with_skip_layers(vec![head]);
    let outcome = Upaq::new(UpaqConfig::lck()).compress(&detector.model, &ctx)?;

    // 4. Deploy the compressed backbone and re-calibrate the head.
    let mut compressed = detector.clone();
    compressed.model = outcome.model;
    fit_lidar_head(&mut compressed, &data, &train, 1e-3)?;

    // 5. Compare.
    let comp_map = eval_map(&compressed, &data, &eval)?;
    println!(
        "compressed: {:.2}× smaller, {:.0}% sparse, mean {:.1} bits, mAP {comp_map:.1}",
        outcome.report.compression_ratio,
        outcome.report.sparsity * 100.0,
        outcome.report.mean_bits,
    );
    println!(
        "predicted Jetson Orin Nano latency: {:.2} ms, energy {:.3} J",
        outcome.report.latency_ms, outcome.report.energy_j
    );
    Ok(())
}
