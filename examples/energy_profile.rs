//! Power-trace profiling with the NVPower-style sampler.
//!
//! The paper measures energy with the NVPower tool: sample board power
//! while the model runs, integrate the trace. This example reproduces that
//! workflow on the analytic device model — estimate a detector's inference,
//! sample its power trace, and check the integral against the model's
//! energy number.
//!
//! Run with `cargo run --release --example energy_profile`.

use std::collections::HashMap;
use upaq_hwmodel::exec::{model_executions, BitAllocation};
use upaq_hwmodel::latency::estimate;
use upaq_hwmodel::power::NvPowerSampler;
use upaq_hwmodel::DeviceProfile;
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let detector = PointPillars::build(&PointPillarsConfig::paper())?;
    let shapes = detector.input_shapes();
    let costs = upaq_nn::stats::model_costs(&detector.model, &shapes)?;
    let execs = model_executions(
        &detector.model,
        &costs,
        &BitAllocation::new(),
        &HashMap::new(),
    );

    for device in [DeviceProfile::jetson_orin_nano(), DeviceProfile::rtx_4080()] {
        let est = estimate(&device, &execs);
        let sampler = NvPowerSampler::new(device.idle_power_w);
        let trace = sampler.sample(&est);
        let idle_energy = 2.0 * sampler.idle_margin_s * sampler.idle_power_w;
        let integrated = trace.integrate_energy() - idle_energy;
        println!(
            "{}: {:.2} ms, model energy {:.3} J, trace integral {:.3} J ({} samples @ {:.0} Hz)",
            device.name,
            est.latency_ms(),
            est.energy_j,
            integrated,
            trace.samples().len(),
            1.0 / trace.dt_s(),
        );
        // Mini ASCII power plot.
        let max_p = trace
            .samples()
            .iter()
            .map(|s| s.power_w)
            .fold(0.0, f64::max);
        let mut plot = String::new();
        for sample in trace
            .samples()
            .iter()
            .step_by(trace.samples().len() / 60 + 1)
        {
            let level = (sample.power_w / max_p * 8.0) as usize;
            plot.push(char::from_u32(0x2581 + level.min(7) as u32).unwrap_or('█'));
        }
        println!("  power: {plot}\n");
    }
    Ok(())
}
