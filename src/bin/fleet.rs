//! Fleet-serving benchmark: multiplex hundreds of sensor streams over one
//! shared worker pool with cross-stream batching, and compare against the
//! same streams served by independent single-stream pipelines.
//!
//! Three modes:
//!
//! * `--mode compare` (default) — runs the saturate-mode fleet (shared
//!   pool, cross-stream batches up to `--max-batch`) and the independent
//!   baseline (one dedicated single-stream pipeline per stream, all
//!   running concurrently, each with its own stage threads, queues and
//!   workspaces) over the same streams, and reports both aggregate
//!   throughput numbers. The delta is the consolidation win: a handful of
//!   shared workers with cross-stream batching replaces hundreds of
//!   dedicated pipelines, while every frame's detections stay
//!   bit-identical to its solo run (asserted by
//!   `crates/serve/tests/fleet.rs`).
//! * `--mode realtime` — replays every stream's arrival schedule against
//!   the wall clock with per-stream deadlines; the report shows per-tenant
//!   accounting (admitted = completed + degraded + dropped + failed for
//!   every stream), starvation boosts, and Jain fairness.
//! * `--mode saturate` — just the batched fleet arm, lossless.
//!
//! Run with `cargo run --release --bin fleet -- [--streams N] [--frames K]
//! [--workers W] [--max-batch B] [--detector lidar|camera]
//! [--mode compare|realtime|saturate] [--policy reactive|proactive]
//! [--scenario NAME] [--threads N]`.
//! `--scenario` draws the fleet's traffic mix, per-stream deadline and
//! arrival rate from the named [`upaq_kitti::scenario`] catalog profile;
//! `--policy proactive` layers complexity-aware rung steering (with VRU
//! and deadline-headroom safety overrides) over realtime admission.
//! `--sparse-act` runs the LiDAR backbone on the gather/scatter
//! sparse-activation path (bit-identical to dense by construction; the
//! report gains a `sparse_activation` per-layer telemetry section).
//! `--faults PLAN` (realtime mode) poisons stream 0 with the named
//! deterministic fault plan from the `upaq-kitti` catalog; the admission
//! firewall and per-stream circuit breaker quarantine the poison while
//! the healthy tenants keep their service (see the `faulted`/
//! `quarantined` counts and per-stream `breaker` sections of the report).
//! The JSON report lands in `target/upaq-results/fleet.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use upaq_bench::harness::save_result;
use upaq_bench::table::print_table;
use upaq_hwmodel::DeviceProfile;
use upaq_json::{json, ToJson, Value};
use upaq_kitti::dataset::Dataset;
use upaq_kitti::faults;
use upaq_kitti::fleet::{FleetScenario, FleetScenarioConfig, StreamClass};
use upaq_kitti::scenario;
use upaq_kitti::stream::{FrameStream, SensorData};
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};
use upaq_models::pretrain::{fit_camera_head, fit_lidar_head};
use upaq_models::smoke::{Smoke, SmokeConfig};
use upaq_models::StreamingDetector;
use upaq_runtime::{Pipeline, PipelineConfig, ProactiveConfig, SparseExecConfig, VariantLadder};
use upaq_serve::{FleetConfig, FleetMode, FleetReport, FleetServer};

const SEED: u64 = 2025;

struct Args {
    streams: usize,
    frames: u64,
    workers: usize,
    max_batch: usize,
    detector: String,
    mode: String,
    policy: String,
    scenario: Option<String>,
    faults: Option<String>,
    threads: usize,
    sparse_act: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        streams: 128,
        frames: 4,
        workers: 2,
        max_batch: 4,
        detector: "lidar".into(),
        mode: "compare".into(),
        policy: "reactive".into(),
        scenario: None,
        faults: None,
        threads: 1,
        sparse_act: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut positive = |flag: &str| -> Result<usize, String> {
            let v: usize = args
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse()
                .map_err(|e| format!("bad {flag} value: {e}"))?;
            if v == 0 {
                return Err(format!("{flag} must be positive"));
            }
            Ok(v)
        };
        match arg.as_str() {
            "--streams" => parsed.streams = positive("--streams")?,
            "--frames" => parsed.frames = positive("--frames")? as u64,
            "--workers" => parsed.workers = positive("--workers")?,
            "--max-batch" => parsed.max_batch = positive("--max-batch")?,
            "--threads" => parsed.threads = positive("--threads")?,
            "--sparse-act" => parsed.sparse_act = true,
            "--detector" => {
                parsed.detector = args
                    .next()
                    .ok_or_else(|| "--detector needs a value".to_string())?;
                if !matches!(parsed.detector.as_str(), "lidar" | "camera") {
                    return Err(format!(
                        "unknown detector `{}` (expected lidar|camera)",
                        parsed.detector
                    ));
                }
            }
            "--mode" => {
                parsed.mode = args
                    .next()
                    .ok_or_else(|| "--mode needs a value".to_string())?;
                if !matches!(parsed.mode.as_str(), "compare" | "realtime" | "saturate") {
                    return Err(format!(
                        "unknown mode `{}` (expected compare|realtime|saturate)",
                        parsed.mode
                    ));
                }
            }
            "--policy" => {
                parsed.policy = args
                    .next()
                    .ok_or_else(|| "--policy needs a value".to_string())?;
                if !matches!(parsed.policy.as_str(), "reactive" | "proactive") {
                    return Err(format!(
                        "unknown policy `{}` (expected reactive|proactive)",
                        parsed.policy
                    ));
                }
            }
            "--scenario" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--scenario needs a value".to_string())?;
                if scenario::by_name(&name).is_none() {
                    return Err(format!(
                        "unknown scenario `{name}` (expected one of: {})",
                        scenario::names().join(", ")
                    ));
                }
                parsed.scenario = Some(name);
            }
            "--faults" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--faults needs a value".to_string())?;
                if faults::by_name(&name).is_none() {
                    return Err(format!(
                        "unknown fault plan `{name}` (catalog: {})",
                        faults::names().join(", ")
                    ));
                }
                parsed.faults = Some(name);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

/// The independent baseline: one dedicated single-stream [`Pipeline`] per
/// stream, all running concurrently — the per-stream deployment model the
/// fleet consolidates away. Each pipeline is deterministic (lossless, no
/// pacing, full model on every frame), so it does exactly the work the
/// saturate-mode fleet does; what it cannot do is share workers or batch
/// across tenants, and every pipeline brings its own stage threads,
/// queues, and workspaces. Frame streams are synthesized before the clock
/// starts, symmetric with `FleetServer::run`.
fn run_independent<D: StreamingDetector>(
    ladder: &VariantLadder<D>,
    scenario: &FleetScenario,
) -> (u64, f64)
where
    D::Input: SensorData,
{
    let streams: Vec<FrameStream<D::Input>> = scenario
        .profiles()
        .iter()
        .map(|p| scenario.stream::<D::Input>(p.id))
        .collect();
    let frames = scenario.config().frames_per_stream;
    let delivered = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for stream in streams {
            let ladder = ladder.clone();
            let delivered = &delivered;
            s.spawn(move || {
                let pipeline = Pipeline::new(
                    ladder,
                    PipelineConfig {
                        frames,
                        backbone_workers: 1,
                        max_batch: 1,
                        deterministic: true,
                        scenario: "independent".into(),
                        ..PipelineConfig::default()
                    },
                );
                let outcome = pipeline.run(stream).expect("pipeline run");
                delivered.fetch_add(outcome.report.frames_completed, Ordering::Relaxed);
            });
        }
    });
    (
        delivered.load(Ordering::Relaxed),
        started.elapsed().as_secs_f64(),
    )
}

fn summarize(
    label: &str,
    delivered: u64,
    duration_s: f64,
    report: Option<&FleetReport>,
) -> Vec<String> {
    let fps = if duration_s > 0.0 {
        delivered as f64 / duration_s
    } else {
        0.0
    };
    vec![
        label.to_string(),
        format!("{delivered}"),
        format!("{duration_s:.3}"),
        format!("{fps:.1}"),
        report.map_or("-".into(), |r| format!("{:.2}", r.mean_batch_size)),
        report.map_or("-".into(), |r| format!("{}", r.cross_stream_batches)),
        report.map_or("-".into(), |r| format!("{:.2}", r.amortized_backbone_ms)),
        report.map_or("-".into(), |r| format!("{:.3}", r.fairness_jain)),
    ]
}

fn run_fleet<D: StreamingDetector>(args: &Args, ladder: VariantLadder<D>, scenario: FleetScenario)
where
    D::Input: SensorData,
{
    let mut doc: Vec<(String, Value)> = vec![(
        "config".into(),
        json!({
            "streams": args.streams,
            "frames_per_stream": args.frames,
            "workers": args.workers,
            "max_batch": args.max_batch,
            "detector": args.detector,
            "mode": args.mode,
            "policy": args.policy,
            "scenario": args.scenario,
            "faults": args.faults,
            "threads": args.threads,
            "sparse_act": args.sparse_act,
        }),
    )];
    let mut rows = Vec::new();

    if args.mode == "realtime" {
        println!(
            "Realtime fleet: {} streams × {} frames, {} workers, max batch {}…",
            args.streams, args.frames, args.workers, args.max_batch
        );
        // Chaos runs poison stream 0: one bad tenant against a healthy
        // population is the isolation scenario the breaker exists for.
        let fault_plan = args
            .faults
            .as_deref()
            .and_then(faults::by_name)
            .filter(|p| !p.is_clean());
        if let Some(plan) = &fault_plan {
            println!(
                "  fault plan `{}` on stream 0: {} (seed {:#x})",
                plan.name, plan.description, plan.seed
            );
        }
        let fault_streams = if fault_plan.is_some() {
            vec![0]
        } else {
            Vec::new()
        };
        let server = FleetServer::new(
            ladder,
            scenario,
            FleetConfig {
                workers: args.workers,
                max_batch: args.max_batch,
                mode: FleetMode::Realtime,
                proactive: (args.policy == "proactive").then(ProactiveConfig::default),
                faults: fault_plan,
                fault_streams,
                sparse_act: args.sparse_act.then(SparseExecConfig::default),
                ..FleetConfig::default()
            },
        );
        let report = server.run().report;
        rows.push(summarize(
            "fleet (realtime)",
            report.delivered(),
            report.duration_s,
            Some(&report),
        ));
        println!(
            "  delivered {}/{} ({} degraded, {} dropped, {} boosts, Jain {:.3})",
            report.delivered(),
            report.admitted,
            report.degraded,
            report.dropped_backpressure + report.dropped_deadline,
            report.boosts,
            report.fairness_jain,
        );
        if report.faulted > 0 {
            println!(
                "  supervision: {} faulted ({} quarantined at admission)",
                report.faulted, report.quarantined
            );
            for row in &report.per_stream {
                if let Some(b) = row.breaker.as_ref().filter(|b| b.transitions.opened > 0) {
                    println!(
                        "  stream {} breaker: {} (opened {}, half-opened {}, reclosed {})",
                        row.id,
                        b.state,
                        b.transitions.opened,
                        b.transitions.half_opened,
                        b.transitions.reclosed
                    );
                }
            }
        }
        if let Some(ov) = &report.overrides {
            println!(
                "  proactive overrides: vru_floor {} deadline_clamp {} headroom_fallback {} vru_unfit {}",
                ov.vru_floor, ov.deadline_clamp, ov.headroom_fallback, ov.vru_unfit
            );
        }
        doc.push(("realtime".into(), report.to_json()));
    } else {
        if args.mode == "compare" {
            println!(
                "Independent baseline: {} dedicated single-stream pipelines, concurrently…",
                args.streams
            );
            let (delivered, duration_s) = run_independent(&ladder, &scenario);
            let fps = delivered as f64 / duration_s.max(f64::MIN_POSITIVE);
            rows.push(summarize("independent", delivered, duration_s, None));
            doc.push((
                "independent".into(),
                json!({
                    "delivered": delivered,
                    "duration_s": duration_s,
                    "fps": fps,
                }),
            ));
        }
        println!(
            "Fleet: {} streams × {} frames, {} workers, cross-stream batches up to {}…",
            args.streams, args.frames, args.workers, args.max_batch
        );
        let server = FleetServer::new(
            ladder,
            scenario,
            FleetConfig {
                workers: args.workers,
                max_batch: args.max_batch,
                mode: FleetMode::Saturate,
                sparse_act: args.sparse_act.then(SparseExecConfig::default),
                ..FleetConfig::default()
            },
        );
        let report = server.run().report;
        rows.push(summarize(
            "fleet (batched)",
            report.delivered(),
            report.duration_s,
            Some(&report),
        ));
        if args.mode == "compare" {
            let base_fps = doc
                .iter()
                .find(|(k, _)| k == "independent")
                .and_then(|(_, v)| v.get("fps"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let fleet_fps = report.delivered() as f64 / report.duration_s.max(f64::MIN_POSITIVE);
            let speedup = if base_fps > 0.0 {
                fleet_fps / base_fps
            } else {
                0.0
            };
            println!(
                "  aggregate throughput: fleet {fleet_fps:.1} fps vs independent {base_fps:.1} fps ({speedup:.2}×)"
            );
            doc.push(("speedup".into(), json!(speedup)));
        }
        doc.push(("fleet".into(), report.to_json()));
    }

    println!("\nFleet summary:");
    print_table(
        &[
            "Arm",
            "Delivered",
            "Duration (s)",
            "Agg FPS",
            "Avg batch",
            "Cross batches",
            "Amort (ms)",
            "Jain",
        ],
        &rows,
    );

    let value = Value::Obj(doc);
    println!("\nFull report (fleet.json):");
    println!("{}", value.pretty());
    save_result("fleet", &value).expect("failed to save fleet.json");
    println!("\nSaved to target/upaq-results/fleet.json");
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args = parse_args().map_err(|e| {
        format!(
            "{e}\nusage: fleet [--streams N] [--frames K] [--workers W] [--max-batch B] \
             [--detector lidar|camera] [--mode compare|realtime|saturate] \
             [--policy reactive|proactive] [--scenario NAME] [--faults PLAN] [--threads N] \
             [--sparse-act]"
        )
    })?;
    upaq_tensor::ops::TensorParallel::set_threads(args.threads);
    println!("Fleet serving: cross-stream batching over one shared worker pool");
    if args.sparse_act {
        println!(
            "Sparse activation: gather/scatter backbone over active pillars \
             (bit-identical to dense; camera streams run dense)"
        );
    }

    let device = DeviceProfile::jetson_orin_nano();
    let mut config = FleetScenarioConfig {
        streams: args.streams,
        frames_per_stream: args.frames,
        ..FleetScenarioConfig::default()
    };
    if let Some(name) = &args.scenario {
        let profile = scenario::by_name(name).expect("validated by parse_args");
        println!(
            "Scenario `{}`: {} (deadline {:.0} ms, mean arrival {:.1} ms)",
            profile.name,
            profile.description,
            profile.deadline_s * 1e3,
            profile.arrival.mean_interval_s() * 1e3,
        );
        // Every stream plays the profile's traffic: its scene mix, its
        // deadline, and its mean arrival rate (the fleet replays per-stream
        // schedules, so burst structure is carried by the rate alone).
        config.dataset = profile.dataset.clone();
        config.classes = vec![StreamClass {
            rate_hz: 1.0 / profile.arrival.mean_interval_s(),
            deadline_s: profile.deadline_s,
        }];
    }

    // Scenario runs fit the base head on the scenario's own scenes and
    // calibrate every degraded rung's head on its compressed backbone:
    // the proactive policy steers on detection feedback, which unfitted
    // heads would reduce to noise. The historical non-scenario benchmark
    // keeps its unfitted detectors (throughput numbers stay comparable).
    if args.detector == "camera" {
        let smoke_cfg = SmokeConfig::tiny();
        config.dataset.camera = smoke_cfg.calib.clone();
        let mut det = Smoke::build(&smoke_cfg)?;
        if args.scenario.is_some() {
            let data = Dataset::generate(&config.dataset, SEED);
            let scenes: Vec<usize> = (0..data.len()).collect();
            fit_camera_head(&mut det, &data, &scenes, 1e-3)?;
            let mut ladder = VariantLadder::build(det, &device, SEED)?;
            ladder.calibrate_heads(&data, 1e-3)?;
            run_fleet(&args, ladder, FleetScenario::build(config, SEED));
        } else {
            let ladder = VariantLadder::build(det, &device, SEED)?;
            run_fleet(&args, ladder, FleetScenario::build(config, SEED));
        }
    } else {
        let mut det = PointPillars::build(&PointPillarsConfig::tiny())?;
        if args.scenario.is_some() {
            let data = Dataset::generate(&config.dataset, SEED);
            let scenes: Vec<usize> = (0..data.len()).collect();
            fit_lidar_head(&mut det, &data, &scenes, 1e-3)?;
            let mut ladder = VariantLadder::build(det, &device, SEED)?;
            ladder.calibrate_heads(&data, 1e-3)?;
            run_fleet(&args, ladder, FleetScenario::build(config, SEED));
        } else {
            let ladder = VariantLadder::build(det, &device, SEED)?;
            run_fleet(&args, ladder, FleetScenario::build(config, SEED));
        }
    }
    Ok(())
}
