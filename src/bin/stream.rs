//! Streaming-runtime benchmark: runs the `upaq-runtime` pipeline through a
//! nominal and an overload scenario and emits the JSON run reports.
//!
//! Both scenarios share one degrade ladder (base / UPAQ LCK / UPAQ HCK
//! PointPillars variants on the Jetson Orin Nano cost model). The nominal
//! run paces the source so the deadline is comfortably met; the overload
//! run injects a slow backbone stage well past the deadline, forcing the
//! scheduler to degrade down the ladder and shed load — visible in the
//! drop/degrade counters of the second report.
//!
//! Run with `cargo run --release --bin stream`.

use upaq_bench::harness::save_result;
use upaq_bench::table::print_table;
use upaq_hwmodel::DeviceProfile;
use upaq_json::ToJson;
use upaq_kitti::dataset::DatasetConfig;
use upaq_kitti::stream::FrameStream;
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};
use upaq_runtime::{Pipeline, PipelineConfig, RuntimeReport, SchedulerConfig, VariantLadder};

const SEED: u64 = 2025;

fn frames() -> FrameStream {
    let mut cfg = DatasetConfig::small();
    cfg.scenes = 4;
    FrameStream::generate(&cfg, SEED)
}

fn ladder() -> Result<VariantLadder, Box<dyn std::error::Error + Send + Sync>> {
    // The tiny detector keeps a full streaming run in benchmark territory
    // (the paper-sized backbone is exercised by the Table-2 harness).
    let det = PointPillars::build(&PointPillarsConfig::tiny())?;
    VariantLadder::build(det, &DeviceProfile::jetson_orin_nano(), SEED)
}

fn nominal() -> PipelineConfig {
    PipelineConfig {
        frames: 60,
        queue_capacity: 4,
        backbone_workers: 2,
        scheduler: SchedulerConfig::default(),
        // ~30 FPS: inside the pipeline's measured service rate, so frames
        // meet the 100 ms deadline on the full model.
        source_interval_s: 0.033,
        slow_backbone_s: 0.0,
        deterministic: false,
        scenario: "nominal".into(),
    }
}

fn overload() -> PipelineConfig {
    PipelineConfig {
        frames: 40,
        queue_capacity: 2,
        backbone_workers: 1,
        scheduler: SchedulerConfig {
            deadline_s: 0.050,
            ..SchedulerConfig::default()
        },
        source_interval_s: 0.020,
        // Injected stall well past the deadline: the scheduler must degrade
        // and then shed load once even the cheapest variant cannot fit.
        slow_backbone_s: 0.080,
        deterministic: false,
        scenario: "overload".into(),
    }
}

fn summarize(r: &RuntimeReport) -> Vec<String> {
    vec![
        r.scenario.clone(),
        format!("{}", r.frames_generated),
        format!("{}", r.frames_completed),
        format!("{}", r.dropped_backpressure + r.dropped_deadline),
        format!("{}", r.degraded),
        format!("{:.1}", r.fps),
        format!("{:.2}", r.e2e_latency.p50_s * 1e3),
        format!("{:.2}", r.e2e_latency.p99_s * 1e3),
        format!("{:.3}", r.energy_per_frame_j),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Streaming runtime: deadline-aware scheduling over the UPAQ degrade ladder\n");

    let ladder = ladder().map_err(|e| e as Box<dyn std::error::Error>)?;
    println!("Degrade ladder (Jetson Orin Nano cost model):");
    print_table(
        &[
            "Level",
            "Variant",
            "Modeled latency (ms)",
            "Modeled energy (J)",
            "Es",
        ],
        &ladder
            .levels()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                vec![
                    format!("{i}"),
                    v.name.clone(),
                    format!("{:.3}", v.estimate.latency_s * 1e3),
                    format!("{:.4}", v.estimate.energy_j),
                    format!("{:.3}", v.efficiency_score),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut reports = Vec::new();
    for config in [nominal(), overload()] {
        let scenario = config.scenario.clone();
        println!(
            "\nRunning `{scenario}` scenario ({} frames)…",
            config.frames
        );
        let pipeline = Pipeline::new(ladder.clone(), config);
        let outcome = pipeline.run(frames());
        reports.push(outcome.report);
    }

    println!("\nScenario summary:");
    print_table(
        &[
            "Scenario",
            "Generated",
            "Completed",
            "Dropped",
            "Degraded",
            "FPS",
            "p50 (ms)",
            "p99 (ms)",
            "E/frame (J)",
        ],
        &reports.iter().map(summarize).collect::<Vec<_>>(),
    );

    println!("\nFull report (stream.json):");
    println!("{}", reports.to_json().pretty());
    save_result("stream", &reports)?;
    println!("\nSaved to target/upaq-results/stream.json");
    Ok(())
}
