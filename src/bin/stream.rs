//! Streaming-runtime benchmark: runs the `upaq-runtime` pipeline through a
//! nominal and an overload scenario per detector and emits the JSON run
//! reports.
//!
//! Each detector shares one degrade ladder (base / UPAQ LCK / UPAQ HCK
//! variants on the Jetson Orin Nano cost model) — PointPillars over LiDAR
//! sweeps, SMOKE over rendered camera frames. The nominal run paces the
//! source so the deadline is comfortably met; the overload run injects a
//! slow backbone stage well past the deadline, forcing the scheduler to
//! degrade down the ladder and shed load — visible in the drop/degrade
//! counters of the second report.
//!
//! Run with `cargo run --release --bin stream -- [--detector lidar|camera|both]
//! [--frames N] [--batch K] [--threads N]`. `--threads N` sets the
//! persistent worker pool's claimant count for the convolution kernels
//! (bit-identical output at any value). `--batch K` lets each backbone worker admit
//! up to `K` queued frames as one batched forward pass when the predicted
//! batched latency still meets the group's earliest deadline; `--batch 1`
//! (the default) is the historical per-frame scheduling. Under overload
//! the injected backbone stall is charged once per *invocation*, so
//! batching amortizes it and completes measurably more frames.

use upaq_bench::harness::save_result;
use upaq_bench::table::print_table;
use upaq_hwmodel::DeviceProfile;
use upaq_json::ToJson;
use upaq_kitti::dataset::DatasetConfig;
use upaq_kitti::stream::{FrameStream, SensorData};
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};
use upaq_models::smoke::{Smoke, SmokeConfig};
use upaq_models::StreamingDetector;
use upaq_runtime::{Pipeline, PipelineConfig, RuntimeReport, SchedulerConfig, VariantLadder};

const SEED: u64 = 2025;

fn dataset_config(camera: Option<&SmokeConfig>) -> DatasetConfig {
    let mut cfg = DatasetConfig::small();
    cfg.scenes = 4;
    if let Some(smoke) = camera {
        cfg.camera = smoke.calib.clone();
    }
    cfg
}

fn nominal(frames: u64, batch: usize) -> PipelineConfig {
    PipelineConfig {
        frames,
        queue_capacity: 4.max(batch),
        backbone_workers: 2,
        scheduler: SchedulerConfig::default(),
        // ~30 FPS: inside the pipeline's measured service rate, so frames
        // meet the 100 ms deadline on the full model.
        source_interval_s: 0.033,
        slow_backbone_s: 0.0,
        max_batch: batch,
        postprocess_workers: 2,
        deterministic: false,
        scenario: "nominal".into(),
    }
}

fn overload(frames: u64, batch: usize) -> PipelineConfig {
    PipelineConfig {
        frames: (frames * 2 / 3).max(1),
        queue_capacity: 2.max(batch),
        backbone_workers: 1,
        scheduler: SchedulerConfig {
            // Generous enough that batched service can fit (a group waits
            // roughly one invocation in the queue), while per-frame
            // service still sheds most of the 50 FPS arrivals.
            deadline_s: 0.250,
            ..SchedulerConfig::default()
        },
        source_interval_s: 0.020,
        // Injected stall charged once per invocation: at `--batch 1` it
        // caps service near 12 FPS against 50 FPS arrivals, so the
        // scheduler degrades and sheds load; at `--batch 4` the stall
        // amortizes 4× and the same stream mostly completes.
        slow_backbone_s: 0.080,
        max_batch: batch,
        postprocess_workers: 2,
        deterministic: false,
        scenario: "overload".into(),
    }
}

fn summarize(r: &RuntimeReport) -> Vec<String> {
    vec![
        r.detector.clone(),
        r.scenario.clone(),
        format!("{}", r.frames_generated),
        format!("{}", r.frames_completed),
        format!("{}", r.dropped_backpressure + r.dropped_deadline),
        format!("{}", r.failed),
        format!("{}", r.degraded),
        format!("{:.1}", r.fps),
        format!("{:.2}", r.mean_batch_size),
        format!("{:.2}", r.amortized_backbone_ms),
        format!("{:.2}", r.e2e_latency.p50_s * 1e3),
        format!("{:.2}", r.e2e_latency.p99_s * 1e3),
        format!("{:.3}", r.energy_per_frame_j),
    ]
}

fn print_ladder<D: StreamingDetector>(ladder: &VariantLadder<D>) {
    print_table(
        &[
            "Level",
            "Variant",
            "Modeled latency (ms)",
            "Modeled energy (J)",
            "Es",
        ],
        &ladder
            .levels()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                vec![
                    format!("{i}"),
                    v.name.clone(),
                    format!("{:.3}", v.estimate.latency_s * 1e3),
                    format!("{:.4}", v.estimate.energy_j),
                    format!("{:.3}", v.efficiency_score),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn run_scenarios<D: StreamingDetector>(
    ladder: VariantLadder<D>,
    data_cfg: &DatasetConfig,
    frames: u64,
    batch: usize,
    reports: &mut Vec<RuntimeReport>,
) where
    D::Input: SensorData,
{
    let modality = ladder.level(0).detector.modality();
    println!("\nDegrade ladder for `{modality}` (Jetson Orin Nano cost model):");
    print_ladder(&ladder);
    for config in [nominal(frames, batch), overload(frames, batch)] {
        let scenario = config.scenario.clone();
        println!(
            "Running `{modality}/{scenario}` scenario ({} frames, max batch {batch})…",
            config.frames
        );
        let pipeline = Pipeline::new(ladder.clone(), config);
        let outcome = pipeline.run(FrameStream::<D::Input>::generate(data_cfg, SEED));
        reports.push(outcome.report);
    }
}

fn parse_args() -> Result<(String, u64, usize, usize), String> {
    let mut detector = "both".to_string();
    let mut frames = 60u64;
    let mut batch = 1usize;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--detector" => {
                detector = args
                    .next()
                    .ok_or_else(|| "--detector needs a value".to_string())?;
                if !matches!(detector.as_str(), "lidar" | "camera" | "both") {
                    return Err(format!(
                        "unknown detector `{detector}` (expected lidar|camera|both)"
                    ));
                }
            }
            "--frames" => {
                frames = args
                    .next()
                    .ok_or_else(|| "--frames needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --frames value: {e}"))?;
                if frames == 0 {
                    return Err("--frames must be positive".into());
                }
            }
            "--batch" => {
                batch = args
                    .next()
                    .ok_or_else(|| "--batch needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --batch value: {e}"))?;
                if batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--threads" => {
                threads = args
                    .next()
                    .ok_or_else(|| "--threads needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((detector, frames, batch, threads))
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let (detector, frames, batch, threads) = parse_args().map_err(|e| {
        format!(
            "{e}\nusage: stream [--detector lidar|camera|both] [--frames N] [--batch K] [--threads N]"
        )
    })?;
    // Kernel-level parallelism: the persistent worker pool splits each
    // convolution's output channels across `threads` claimants. Results
    // are bit-identical at any thread count.
    upaq_tensor::ops::TensorParallel::set_threads(threads);
    println!("Streaming runtime: deadline-aware scheduling over the UPAQ degrade ladder");

    let device = DeviceProfile::jetson_orin_nano();
    let mut reports = Vec::new();

    if detector == "lidar" || detector == "both" {
        // The tiny detectors keep a full streaming run in benchmark
        // territory (the paper-sized backbones are exercised by the
        // Table-2 harness).
        let det = PointPillars::build(&PointPillarsConfig::tiny())?;
        let ladder = VariantLadder::build(det, &device, SEED)?;
        run_scenarios(ladder, &dataset_config(None), frames, batch, &mut reports);
    }
    if detector == "camera" || detector == "both" {
        let smoke_cfg = SmokeConfig::tiny();
        let det = Smoke::build(&smoke_cfg)?;
        let ladder = VariantLadder::build(det, &device, SEED)?;
        run_scenarios(
            ladder,
            &dataset_config(Some(&smoke_cfg)),
            frames,
            batch,
            &mut reports,
        );
    }

    println!("\nScenario summary:");
    print_table(
        &[
            "Detector",
            "Scenario",
            "Generated",
            "Completed",
            "Dropped",
            "Failed",
            "Degraded",
            "FPS",
            "Avg batch",
            "Amort (ms)",
            "p50 (ms)",
            "p99 (ms)",
            "E/frame (J)",
        ],
        &reports.iter().map(summarize).collect::<Vec<_>>(),
    );

    println!("\nFull report (stream.json):");
    println!("{}", reports.to_json().pretty());
    save_result("stream", &reports).map_err(|e| e.to_string())?;
    println!("\nSaved to target/upaq-results/stream.json");
    Ok(())
}
