//! Streaming-runtime benchmark: runs the `upaq-runtime` pipeline through a
//! nominal and an overload scenario per detector and emits the JSON run
//! reports.
//!
//! Each detector shares one degrade ladder (base / UPAQ LCK / UPAQ HCK
//! variants on the Jetson Orin Nano cost model) — PointPillars over LiDAR
//! sweeps, SMOKE over rendered camera frames. The nominal run paces the
//! source so the deadline is comfortably met; the overload run injects a
//! slow backbone stage well past the deadline, forcing the scheduler to
//! degrade down the ladder and shed load — visible in the drop/degrade
//! counters of the second report.
//!
//! Run with `cargo run --release --bin stream -- [--detector lidar|camera|both]
//! [--frames N] [--batch K] [--threads N] [--policy reactive|proactive]
//! [--scenario NAME]`. `--threads N` sets the persistent worker pool's
//! claimant count for the convolution kernels (bit-identical output at any
//! value). `--batch K` lets each backbone worker admit up to `K` queued
//! frames as one batched forward pass when the predicted batched latency
//! still meets the group's earliest deadline; `--batch 1` (the default) is
//! the historical per-frame scheduling. Under overload the injected
//! backbone stall is charged once per *invocation*, so batching amortizes
//! it and completes measurably more frames.
//!
//! `--policy proactive` layers complexity-aware admission over the
//! reactive scheduler: easy frames steer to cheaper rungs ahead of time,
//! with the VRU-safety and deadline-headroom overrides reported in the
//! JSON `overrides` counters. `--scenario NAME` replaces the
//! nominal+overload pair with one profile from the `upaq-kitti` scenario
//! catalog (traffic mix, arrival pattern, deadline); in scenario mode the
//! detector head is least-squares fitted on the scenario's own scenes
//! first, so the detection feedback that drives the proactive policy is
//! meaningful rather than random-head noise.
//!
//! `--faults PLAN` overlays a deterministic fault plan from the
//! `upaq-kitti` fault catalog (NaN bursts, truncated frames, sensor
//! stalls, injected panics, latency spikes) on whichever scenario runs.
//! The supervision layer quarantines or cancels the affected frames into
//! the `faulted` accounting class; the run itself never aborts.

use upaq_bench::harness::save_result;
use upaq_bench::table::print_table;
use upaq_hwmodel::DeviceProfile;
use upaq_json::ToJson;
use upaq_kitti::dataset::{Dataset, DatasetConfig};
use upaq_kitti::faults::{self, FaultPlan};
use upaq_kitti::scenario::{self, ScenarioProfile};
use upaq_kitti::stream::{FrameStream, SensorData};
use upaq_models::pointpillars::{PointPillars, PointPillarsConfig};
use upaq_models::pretrain::{fit_camera_head, fit_lidar_head};
use upaq_models::smoke::{Smoke, SmokeConfig};
use upaq_models::StreamingDetector;
use upaq_runtime::{
    Pipeline, PipelineConfig, ProactiveConfig, RuntimeReport, SchedulerConfig, SparseExecConfig,
    VariantLadder,
};

const SEED: u64 = 2025;

fn dataset_config(camera: Option<&SmokeConfig>) -> DatasetConfig {
    let mut cfg = DatasetConfig::small();
    cfg.scenes = 4;
    if let Some(smoke) = camera {
        cfg.camera = smoke.calib.clone();
    }
    cfg
}

fn nominal(frames: u64, batch: usize, proactive: Option<ProactiveConfig>) -> PipelineConfig {
    PipelineConfig {
        frames,
        queue_capacity: 4.max(batch),
        backbone_workers: 2,
        scheduler: SchedulerConfig::default(),
        // ~30 FPS: inside the pipeline's measured service rate, so frames
        // meet the 100 ms deadline on the full model.
        source_interval_s: 0.033,
        source_intervals: Vec::new(),
        slow_backbone_s: 0.0,
        max_batch: batch,
        postprocess_workers: 2,
        deterministic: false,
        proactive,
        scenario: "nominal".into(),
        ..PipelineConfig::default()
    }
}

fn overload(frames: u64, batch: usize, proactive: Option<ProactiveConfig>) -> PipelineConfig {
    PipelineConfig {
        frames: (frames * 2 / 3).max(1),
        queue_capacity: 2.max(batch),
        backbone_workers: 1,
        scheduler: SchedulerConfig {
            // Generous enough that batched service can fit (a group waits
            // roughly one invocation in the queue), while per-frame
            // service still sheds most of the 50 FPS arrivals.
            deadline_s: 0.250,
            ..SchedulerConfig::default()
        },
        source_interval_s: 0.020,
        source_intervals: Vec::new(),
        // Injected stall charged once per invocation: at `--batch 1` it
        // caps service near 12 FPS against 50 FPS arrivals, so the
        // scheduler degrades and sheds load; at `--batch 4` the stall
        // amortizes 4× and the same stream mostly completes.
        slow_backbone_s: 0.080,
        max_batch: batch,
        postprocess_workers: 2,
        deterministic: false,
        proactive,
        scenario: "overload".into(),
        ..PipelineConfig::default()
    }
}

/// Pipeline configuration for one catalog scenario: the profile supplies
/// the arrival-gap cycle and the deadline; worker shape follows the
/// nominal run.
fn scenario_config(
    profile: &ScenarioProfile,
    frames: u64,
    batch: usize,
    proactive: Option<ProactiveConfig>,
) -> PipelineConfig {
    PipelineConfig {
        frames,
        queue_capacity: 4.max(batch),
        backbone_workers: 2,
        scheduler: SchedulerConfig {
            deadline_s: profile.deadline_s,
            ..SchedulerConfig::default()
        },
        source_interval_s: 0.0,
        source_intervals: profile.arrival.cycle(),
        slow_backbone_s: 0.0,
        max_batch: batch,
        postprocess_workers: 2,
        deterministic: false,
        proactive,
        scenario: profile.name.into(),
        ..PipelineConfig::default()
    }
}

fn summarize(r: &RuntimeReport) -> Vec<String> {
    vec![
        r.detector.clone(),
        r.scenario.clone(),
        r.policy.clone(),
        format!("{}", r.frames_generated),
        format!("{}", r.frames_completed),
        format!("{}", r.dropped_backpressure + r.dropped_deadline),
        format!("{}", r.failed),
        format!("{}", r.faulted),
        format!("{}", r.degraded),
        format!("{:.1}", r.fps),
        format!("{:.2}", r.mean_batch_size),
        format!("{:.2}", r.e2e_latency.p50_s * 1e3),
        format!("{:.2}", r.e2e_latency.p99_s * 1e3),
        format!("{:.3}", r.energy_per_frame_j),
        format!("{:.1}", r.energy_saved_vs_base_frac * 100.0),
    ]
}

fn print_ladder<D: StreamingDetector>(ladder: &VariantLadder<D>) {
    print_table(
        &[
            "Level",
            "Variant",
            "Modeled latency (ms)",
            "Modeled energy (J)",
            "Es",
        ],
        &ladder
            .levels()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                vec![
                    format!("{i}"),
                    v.name.clone(),
                    format!("{:.3}", v.estimate.latency_s * 1e3),
                    format!("{:.4}", v.estimate.energy_j),
                    format!("{:.3}", v.efficiency_score),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn run_one<D: StreamingDetector>(
    ladder: VariantLadder<D>,
    data_cfg: &DatasetConfig,
    config: PipelineConfig,
    reports: &mut Vec<RuntimeReport>,
) where
    D::Input: SensorData,
{
    let modality = ladder.level(0).detector.modality();
    println!(
        "Running `{modality}/{}` ({} frames, max batch {}, policy {})…",
        config.scenario,
        config.frames,
        config.max_batch,
        if config.proactive.is_some() {
            "proactive"
        } else {
            "reactive"
        },
    );
    let pipeline = Pipeline::new(ladder, config);
    let outcome = pipeline
        .run(FrameStream::<D::Input>::generate(data_cfg, SEED))
        .expect("pipeline run");
    if let Some(ov) = &outcome.report.overrides {
        println!(
            "  overrides: vru_floor {} deadline_clamp {} headroom_fallback {} vru_unfit {}",
            ov.vru_floor, ov.deadline_clamp, ov.headroom_fallback, ov.vru_unfit
        );
    }
    reports.push(outcome.report);
}

#[allow(clippy::too_many_arguments)]
fn run_scenarios<D: StreamingDetector>(
    ladder: VariantLadder<D>,
    data_cfg: &DatasetConfig,
    frames: u64,
    batch: usize,
    proactive: Option<ProactiveConfig>,
    faults: Option<FaultPlan>,
    sparse_act: Option<SparseExecConfig>,
    reports: &mut Vec<RuntimeReport>,
) where
    D::Input: SensorData,
{
    let modality = ladder.level(0).detector.modality();
    println!("\nDegrade ladder for `{modality}` (Jetson Orin Nano cost model):");
    print_ladder(&ladder);
    for mut config in [
        nominal(frames, batch, proactive.clone()),
        overload(frames, batch, proactive.clone()),
    ] {
        config.faults = faults.clone();
        config.sparse_act = sparse_act;
        run_one(ladder.clone(), data_cfg, config, reports);
    }
}

struct Args {
    detector: String,
    frames: u64,
    batch: usize,
    threads: usize,
    scenario: Option<String>,
    faults: Option<String>,
    proactive: bool,
    sparse_act: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        detector: "both".to_string(),
        frames: 60,
        batch: 1,
        threads: 1,
        scenario: None,
        faults: None,
        proactive: false,
        sparse_act: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--detector" => {
                parsed.detector = args
                    .next()
                    .ok_or_else(|| "--detector needs a value".to_string())?;
                if !matches!(parsed.detector.as_str(), "lidar" | "camera" | "both") {
                    return Err(format!(
                        "unknown detector `{}` (expected lidar|camera|both)",
                        parsed.detector
                    ));
                }
            }
            "--frames" => {
                parsed.frames = args
                    .next()
                    .ok_or_else(|| "--frames needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --frames value: {e}"))?;
                if parsed.frames == 0 {
                    return Err("--frames must be positive".into());
                }
            }
            "--batch" => {
                parsed.batch = args
                    .next()
                    .ok_or_else(|| "--batch needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --batch value: {e}"))?;
                if parsed.batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--threads" => {
                parsed.threads = args
                    .next()
                    .ok_or_else(|| "--threads needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
                if parsed.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scenario" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--scenario needs a value".to_string())?;
                if scenario::by_name(&name).is_none() {
                    return Err(format!(
                        "unknown scenario `{name}` (catalog: {})",
                        scenario::names().join(", ")
                    ));
                }
                parsed.scenario = Some(name);
            }
            "--faults" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--faults needs a value".to_string())?;
                if faults::by_name(&name).is_none() {
                    return Err(format!(
                        "unknown fault plan `{name}` (catalog: {})",
                        faults::names().join(", ")
                    ));
                }
                parsed.faults = Some(name);
            }
            "--sparse-act" => parsed.sparse_act = true,
            "--policy" => {
                let policy = args
                    .next()
                    .ok_or_else(|| "--policy needs a value".to_string())?;
                parsed.proactive = match policy.as_str() {
                    "reactive" => false,
                    "proactive" => true,
                    other => {
                        return Err(format!(
                            "unknown policy `{other}` (expected reactive|proactive)"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args = parse_args().map_err(|e| {
        format!(
            "{e}\nusage: stream [--detector lidar|camera|both] [--frames N] [--batch K] \
             [--threads N] [--policy reactive|proactive] [--scenario NAME] [--faults PLAN] \
             [--sparse-act]"
        )
    })?;
    // Kernel-level parallelism: the persistent worker pool splits each
    // convolution's output channels across `threads` claimants. Results
    // are bit-identical at any thread count.
    upaq_tensor::ops::TensorParallel::set_threads(args.threads);
    println!("Streaming runtime: deadline-aware scheduling over the UPAQ degrade ladder");

    let device = DeviceProfile::jetson_orin_nano();
    let proactive = args.proactive.then(ProactiveConfig::default);
    // Sparse-activation backbone: gather/scatter conv over the
    // pillarizer's active sites, bit-identical to dense by construction.
    let sparse_cfg = args.sparse_act.then(SparseExecConfig::default);
    if let Some(cfg) = &sparse_cfg {
        println!(
            "Sparse-activation backbone enabled (dense fallback above {:.0}% active).",
            cfg.dense_threshold * 100.0
        );
    }
    let fault_plan = args
        .faults
        .as_deref()
        .and_then(faults::by_name)
        .filter(|p| !p.is_clean());
    if let Some(plan) = &fault_plan {
        println!(
            "Fault plan `{}`: {} (seed {:#x})",
            plan.name, plan.description, plan.seed
        );
    }
    let mut reports = Vec::new();

    if let Some(name) = &args.scenario {
        let profile = scenario::by_name(name).expect("validated by parse_args");
        println!(
            "Scenario `{}`: {} (deadline {:.0} ms)",
            profile.name,
            profile.description,
            profile.deadline_s * 1e3
        );
        if args.detector == "lidar" || args.detector == "both" {
            // Fit the head on the scenario's own scenes: the proactive
            // policy steers on detection feedback, which an unfitted
            // random head would reduce to noise.
            let mut det = PointPillars::build(&PointPillarsConfig::tiny())?;
            let data = Dataset::generate(&profile.dataset, SEED);
            let scenes: Vec<usize> = (0..data.len()).collect();
            fit_lidar_head(&mut det, &data, &scenes, 1e-3)?;
            let mut ladder = VariantLadder::build(det, &device, SEED)?;
            // Refit the degraded rungs' heads on their own compressed
            // backbones — a base-fit head decoding compressed features
            // emits false-positive spray instead of graded recall.
            ladder.calibrate_heads(&data, 1e-3)?;
            let mut config = scenario_config(&profile, args.frames, args.batch, proactive.clone());
            config.faults = fault_plan.clone();
            config.sparse_act = sparse_cfg;
            run_one(ladder, &profile.dataset, config, &mut reports);
        }
        if args.detector == "camera" || args.detector == "both" {
            let smoke_cfg = SmokeConfig::tiny();
            let mut data_cfg = profile.dataset.clone();
            data_cfg.camera = smoke_cfg.calib.clone();
            let mut det = Smoke::build(&smoke_cfg)?;
            let data = Dataset::generate(&data_cfg, SEED);
            let scenes: Vec<usize> = (0..data.len()).collect();
            fit_camera_head(&mut det, &data, &scenes, 1e-3)?;
            let mut ladder = VariantLadder::build(det, &device, SEED)?;
            ladder.calibrate_heads(&data, 1e-3)?;
            let mut config = scenario_config(&profile, args.frames, args.batch, proactive.clone());
            config.faults = fault_plan.clone();
            config.sparse_act = sparse_cfg;
            run_one(ladder, &data_cfg, config, &mut reports);
        }
    } else {
        if args.detector == "lidar" || args.detector == "both" {
            // The tiny detectors keep a full streaming run in benchmark
            // territory (the paper-sized backbones are exercised by the
            // Table-2 harness).
            let det = PointPillars::build(&PointPillarsConfig::tiny())?;
            let ladder = VariantLadder::build(det, &device, SEED)?;
            run_scenarios(
                ladder,
                &dataset_config(None),
                args.frames,
                args.batch,
                proactive.clone(),
                fault_plan.clone(),
                sparse_cfg,
                &mut reports,
            );
        }
        if args.detector == "camera" || args.detector == "both" {
            let smoke_cfg = SmokeConfig::tiny();
            let det = Smoke::build(&smoke_cfg)?;
            let ladder = VariantLadder::build(det, &device, SEED)?;
            run_scenarios(
                ladder,
                &dataset_config(Some(&smoke_cfg)),
                args.frames,
                args.batch,
                proactive.clone(),
                fault_plan.clone(),
                sparse_cfg,
                &mut reports,
            );
        }
    }

    println!("\nScenario summary:");
    print_table(
        &[
            "Detector",
            "Scenario",
            "Policy",
            "Generated",
            "Completed",
            "Dropped",
            "Failed",
            "Faulted",
            "Degraded",
            "FPS",
            "Avg batch",
            "p50 (ms)",
            "p99 (ms)",
            "E/frame (J)",
            "Saved (%)",
        ],
        &reports.iter().map(summarize).collect::<Vec<_>>(),
    );

    println!("\nFull report (stream.json):");
    println!("{}", reports.to_json().pretty());
    save_result("stream", &reports).map_err(|e| e.to_string())?;
    println!("\nSaved to target/upaq-results/stream.json");
    Ok(())
}
