//! Umbrella crate for the UPAQ reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests in this repository's root can address the whole system
//! through a single dependency:
//!
//! * [`tensor`] — numeric substrate (dense / quantized / sparse tensors);
//! * [`nn`] — layer IR, computation graph, Algorithm 1 grouping;
//! * [`kitti`] — synthetic KITTI-like scenes, LiDAR and camera simulation;
//! * [`det3d`] — 3D boxes, IoU, NMS, mAP, pillar encoding, detection heads;
//! * [`models`] — PointPillars / SMOKE / SECOND / Focals-Conv / VSC builders;
//! * [`hwmodel`] — Jetson Orin Nano and RTX 4080 latency/energy models;
//! * [`upaq`] — the paper's compression framework (Algorithms 2–6);
//! * [`baselines`] — Ps&Qs, Clip-Q, R-TOSS and LiDAR-PTQ comparators.

pub use upaq;
pub use upaq_baselines as baselines;
pub use upaq_det3d as det3d;
pub use upaq_hwmodel as hwmodel;
pub use upaq_kitti as kitti;
pub use upaq_models as models;
pub use upaq_nn as nn;
pub use upaq_tensor as tensor;
